// Command ccsp computes shortest-path structures on an edge-list graph
// using the paper's Congested Clique algorithms and reports the simulated
// round complexity.
//
// The input format is one edge per line: "u v [w]" (0-based node IDs,
// optional positive integer weight, default 1). Lines starting with '#'
// are ignored. The node count is one more than the largest ID seen.
//
// Usage:
//
//	ccsp -algo apsp  -eps 0.5 graph.txt     # (2+ε)/(2+ε,(1+ε)W) APSP
//	ccsp -algo sssp  -src 0 graph.txt       # exact SSSP (Theorem 33)
//	ccsp -algo mssp  -sources 0,5,9 g.txt   # (1+ε) MSSP (Theorem 3)
//	ccsp -algo diameter graph.txt           # near-3/2 diameter (§7.2)
//	ccsp -algo knearest -k 4 graph.txt      # k nearest + routing witnesses
//	ccsp -batch queries.txt graph.txt       # preprocess once, answer many
//
// Batch mode loads the graph once, preprocesses it into a reusable
// hopset artifact (ccsp.Engine), and answers one query per line of the
// batch file ("-" for stdin), paying the hopset construction once for
// the whole batch. Query lines ('#' comments and blank lines skipped):
//
//	mssp 0,5,9      # (1+ε) multi-source distances
//	sssp 3          # exact single-source distances
//	apsp            # all-pairs (picks Thm 28 or 31 by weights)
//	diameter        # near-3/2 diameter
//	knearest 4      # k nearest neighbors
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/congestedclique/ccsp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ccsp:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		algo    = flag.String("algo", "apsp", "apsp | sssp | mssp | diameter | knearest")
		eps     = flag.Float64("eps", 0.5, "approximation parameter ε")
		src     = flag.Int("src", 0, "source for sssp")
		sources = flag.String("sources", "0", "comma-separated sources for mssp")
		k       = flag.Int("k", 4, "k for knearest")
		batch   = flag.String("batch", "", "batch query file ('-' for stdin): preprocess once, answer every line")
		quiet   = flag.Bool("quiet", false, "print only the stats line")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		return fmt.Errorf("usage: ccsp [flags] <edge-list-file>")
	}
	g, err := load(flag.Arg(0))
	if err != nil {
		return err
	}
	opts := ccsp.Options{Epsilon: *eps}

	if *batch != "" {
		return runBatch(g, opts, *batch, *quiet)
	}

	switch *algo {
	case "apsp":
		var res *ccsp.APSPResult
		if g.Unweighted() {
			res, err = ccsp.APSPUnweighted(g, opts)
		} else {
			res, err = ccsp.APSPWeighted(g, opts)
		}
		if err != nil {
			return err
		}
		if !*quiet {
			printMatrix(res.Dist)
		}
		fmt.Println(res.Stats)
	case "sssp":
		res, err := ccsp.SSSP(g, *src, opts)
		if err != nil {
			return err
		}
		if !*quiet {
			for v, d := range res.Dist {
				fmt.Printf("%d\t%s\n", v, distStr(d))
			}
		}
		fmt.Println(res.Stats)
	case "mssp":
		srcList, err := parseSources(*sources)
		if err != nil {
			return err
		}
		res, err := ccsp.MSSP(g, srcList, opts)
		if err != nil {
			return err
		}
		if !*quiet {
			for v := 0; v < g.N(); v++ {
				parts := make([]string, len(res.Sources))
				for i := range res.Sources {
					parts[i] = distStr(res.Dist[v][i])
				}
				fmt.Printf("%d\t%s\n", v, strings.Join(parts, "\t"))
			}
		}
		fmt.Println(res.Stats)
	case "diameter":
		res, err := ccsp.Diameter(g, opts)
		if err != nil {
			return err
		}
		fmt.Printf("diameter estimate: %d\n", res.Estimate)
		fmt.Println(res.Stats)
	case "knearest":
		res, err := ccsp.KNearest(g, *k, opts)
		if err != nil {
			return err
		}
		if !*quiet {
			for v, nb := range res.Neighbors {
				fmt.Printf("%d:", v)
				for _, e := range nb {
					fmt.Printf(" %d(d=%d,via=%d)", e.Node, e.Dist, e.FirstHop)
				}
				fmt.Println()
			}
		}
		fmt.Println(res.Stats)
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}
	return nil
}

// runBatch preprocesses the graph once and answers every query line from
// the batch file, reporting per-query stats and the amortization summary:
// total rounds actually paid vs what one-shot calls would have cost.
func runBatch(g *ccsp.Graph, opts ccsp.Options, path string, quiet bool) error {
	in := os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}

	eng, err := ccsp.NewEngine(g, opts)
	if err != nil {
		return err
	}
	pre := eng.PreprocessStats()
	fmt.Printf("preprocess: %s\n", pre.Total)
	for _, b := range pre.Builds {
		fmt.Printf("  %s eps=%g beta=%d edges=%d: %s\n", b.Kind, b.Eps, b.Beta, b.Edges, b.Stats)
	}

	queryRounds := 0
	queries := 0
	sc := bufio.NewScanner(in)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		var stats ccsp.Stats
		switch fields[0] {
		case "mssp":
			if len(fields) != 2 {
				return fmt.Errorf("%s:%d: want 'mssp s1,s2,...'", path, line)
			}
			srcList, err := parseSources(fields[1])
			if err != nil {
				return fmt.Errorf("%s:%d: %w", path, line, err)
			}
			res, err := eng.MSSP(srcList)
			if err != nil {
				return fmt.Errorf("%s:%d: %w", path, line, err)
			}
			if !quiet {
				for v := 0; v < g.N(); v++ {
					parts := make([]string, len(res.Sources))
					for i := range res.Sources {
						parts[i] = distStr(res.Dist[v][i])
					}
					fmt.Printf("%d\t%s\n", v, strings.Join(parts, "\t"))
				}
			}
			stats = res.Stats
		case "sssp":
			if len(fields) != 2 {
				return fmt.Errorf("%s:%d: want 'sssp src'", path, line)
			}
			s, err := strconv.Atoi(fields[1])
			if err != nil {
				return fmt.Errorf("%s:%d: %w", path, line, err)
			}
			res, err := eng.SSSP(s)
			if err != nil {
				return fmt.Errorf("%s:%d: %w", path, line, err)
			}
			if !quiet {
				for v, d := range res.Dist {
					fmt.Printf("%d\t%s\n", v, distStr(d))
				}
			}
			stats = res.Stats
		case "apsp":
			if len(fields) != 1 {
				return fmt.Errorf("%s:%d: want 'apsp' with no arguments", path, line)
			}
			res, err := eng.APSP()
			if err != nil {
				return fmt.Errorf("%s:%d: %w", path, line, err)
			}
			if !quiet {
				printMatrix(res.Dist)
			}
			stats = res.Stats
		case "diameter":
			if len(fields) != 1 {
				return fmt.Errorf("%s:%d: want 'diameter' with no arguments", path, line)
			}
			res, err := eng.Diameter()
			if err != nil {
				return fmt.Errorf("%s:%d: %w", path, line, err)
			}
			fmt.Printf("diameter estimate: %d\n", res.Estimate)
			stats = res.Stats
		case "knearest":
			if len(fields) != 2 {
				return fmt.Errorf("%s:%d: want 'knearest k'", path, line)
			}
			kq, err := strconv.Atoi(fields[1])
			if err != nil {
				return fmt.Errorf("%s:%d: %w", path, line, err)
			}
			res, err := eng.KNearest(kq)
			if err != nil {
				return fmt.Errorf("%s:%d: %w", path, line, err)
			}
			if !quiet {
				for v, nb := range res.Neighbors {
					fmt.Printf("%d:", v)
					for _, e := range nb {
						fmt.Printf(" %d(d=%d,via=%d)", e.Node, e.Dist, e.FirstHop)
					}
					fmt.Println()
				}
			}
			stats = res.Stats
		default:
			return fmt.Errorf("%s:%d: unknown query %q", path, line, fields[0])
		}
		fmt.Printf("query %q: %s\n", text, stats)
		queryRounds += stats.TotalRounds
		queries++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	pre = eng.PreprocessStats() // lazy artifacts may have been added
	fmt.Printf("batch: %d queries, %d preprocessing rounds (%d builds) + %d query rounds = %d total\n",
		queries, pre.Total.TotalRounds, len(pre.Builds), queryRounds, pre.Total.TotalRounds+queryRounds)
	return nil
}

func parseSources(csv string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(csv, ",") {
		s, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad source list: %w", err)
		}
		out = append(out, s)
	}
	return out, nil
}

func distStr(d int64) string {
	if d >= ccsp.Unreachable {
		return "inf"
	}
	return strconv.FormatInt(d, 10)
}

func printMatrix(dist [][]int64) {
	for _, row := range dist {
		parts := make([]string, len(row))
		for i, d := range row {
			parts[i] = distStr(d)
		}
		fmt.Println(strings.Join(parts, "\t"))
	}
}

func load(path string) (*ccsp.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	var edges [][3]int64
	maxID := 0
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("%s:%d: want 'u v [w]'", path, line)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, line, err)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, line, err)
		}
		w := int64(1)
		if len(fields) == 3 {
			w, err = strconv.ParseInt(fields[2], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %w", path, line, err)
			}
		}
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
		edges = append(edges, [3]int64{int64(u), int64(v), w})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return ccsp.FromEdges(maxID+1, edges)
}
