// Command ccsp computes shortest-path structures on a graph file using
// the paper's Congested Clique algorithms and reports the simulated
// round complexity.
//
// Graphs are read as whitespace edge lists ("u v [w]", 0-based IDs,
// optional weight, '#' comments) or the DIMACS shortest-path format
// (.gr), auto-detected; pass the path positionally or via -graph.
//
// Usage:
//
//	ccsp -algo apsp  -eps 0.5 graph.txt     # (2+ε)/(2+ε,(1+ε)W) APSP
//	ccsp -timeout 30s -algo apsp big.gr     # bound the whole run; Ctrl-C also aborts cleanly
//	ccsp -algo sssp  -src 0 graph.txt       # exact SSSP (Theorem 33)
//	ccsp -algo mssp  -sources 0,5,9 g.txt   # (1+ε) MSSP (Theorem 3)
//	ccsp -algo diameter graph.txt           # near-3/2 diameter (§7.2)
//	ccsp -algo knearest -k 4 graph.txt      # k nearest + routing witnesses
//	ccsp -batch queries.txt graph.txt       # preprocess once, answer many
//	ccsp -graph road.gr -save warm.snap -algo mssp -sources 3   # persist the engine
//	ccsp -load warm.snap -algo diameter     # reuse it: zero preprocessing rounds
//
// With -save or -load, queries run through a persistent ccsp.Engine
// snapshot (the format cmd/ccspd serves from): -save builds the engine
// and writes it after answering, -load restores one and pays no
// preprocessing; the reported stats then cover the query run only, with
// the preprocessing cost printed separately.
//
// Batch mode loads the graph once, preprocesses it into a reusable
// hopset artifact (ccsp.Engine), and answers one query per line of the
// batch file ("-" for stdin), paying the hopset construction once for
// the whole batch. Query lines ('#' comments and blank lines skipped):
//
//	mssp 0,5,9      # (1+ε) multi-source distances
//	sssp 3          # exact single-source distances
//	apsp            # all-pairs (picks Thm 28 or 31 by weights)
//	diameter        # near-3/2 diameter
//	knearest 4      # k nearest neighbors
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"github.com/congestedclique/ccsp"
)

func main() {
	if err := run(); err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			// -timeout expired: exit 124 like timeout(1), distinct from
			// an operator Ctrl-C.
			fmt.Fprintln(os.Stderr, "ccsp: timed out:", err)
			os.Exit(124)
		case errors.Is(err, ccsp.ErrCanceled):
			fmt.Fprintln(os.Stderr, "ccsp: interrupted:", err)
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "ccsp:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		algo      = flag.String("algo", "apsp", "apsp | sssp | mssp | diameter | knearest")
		eps       = flag.Float64("eps", 0.5, "approximation parameter ε")
		src       = flag.Int("src", 0, "source for sssp")
		sources   = flag.String("sources", "0", "comma-separated sources for mssp")
		k         = flag.Int("k", 4, "k for knearest")
		batch     = flag.String("batch", "", "batch query file ('-' for stdin): preprocess once, answer every line")
		quiet     = flag.Bool("quiet", false, "print only the stats line")
		graphPath = flag.String("graph", "", "graph file (edge list or DIMACS .gr); alternative to the positional argument")
		savePath  = flag.String("save", "", "write the preprocessed engine snapshot here after answering")
		loadPath  = flag.String("load", "", "restore a preprocessed engine snapshot instead of building one")
		timeout   = flag.Duration("timeout", 0, "abort preprocessing+queries after this long (0 = no limit)")
	)
	flag.Parse()
	opts := ccsp.Options{Epsilon: *eps}

	// Ctrl-C (or -timeout) cancels the context; the simulator unwinds at
	// its next barrier and the run exits cleanly instead of burning CPU.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	g, eng, err := loadInput(ctx, *graphPath, *loadPath)
	if err != nil {
		return err
	}

	if *batch != "" {
		return runBatch(ctx, g, eng, opts, *batch, *quiet, *savePath)
	}
	// -save needs an engine even when -load didn't provide one; building
	// it up front also moves the preprocessing cost out of the query
	// stats, which is the point of the snapshot.
	if eng == nil && *savePath != "" {
		if eng, err = ccsp.NewEngine(ctx, g, opts); err != nil {
			return err
		}
	}
	q := newQueries(g, eng, opts)

	switch *algo {
	case "apsp":
		res, err := q.apsp(ctx)
		if err != nil {
			return err
		}
		if !*quiet {
			printMatrix(res.Dist)
		}
		fmt.Println(res.Stats)
	case "sssp":
		res, err := q.sssp(ctx, *src)
		if err != nil {
			return err
		}
		if !*quiet {
			for v, d := range res.Dist {
				fmt.Printf("%d\t%s\n", v, distStr(d))
			}
		}
		fmt.Println(res.Stats)
	case "mssp":
		srcList, err := parseSources(*sources)
		if err != nil {
			return err
		}
		res, err := q.mssp(ctx, srcList)
		if err != nil {
			return err
		}
		if !*quiet {
			for v := 0; v < g.N(); v++ {
				parts := make([]string, len(res.Sources))
				for i := range res.Sources {
					parts[i] = distStr(res.Dist[v][i])
				}
				fmt.Printf("%d\t%s\n", v, strings.Join(parts, "\t"))
			}
		}
		fmt.Println(res.Stats)
	case "diameter":
		res, err := q.diameter(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("diameter estimate: %d\n", res.Estimate)
		fmt.Println(res.Stats)
	case "knearest":
		res, err := q.knearest(ctx, *k)
		if err != nil {
			return err
		}
		if !*quiet {
			for v, nb := range res.Neighbors {
				fmt.Printf("%d:", v)
				for _, e := range nb {
					fmt.Printf(" %d(d=%d,via=%d)", e.Node, e.Dist, e.FirstHop)
				}
				fmt.Println()
			}
		}
		fmt.Println(res.Stats)
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}
	if eng != nil && !*quiet {
		fmt.Printf("preprocess (not in the stats line above): %s\n", eng.PreprocessStats().Total)
	}
	return saveEngine(eng, *savePath, *quiet)
}

// loadInput resolves the graph source: a snapshot (-load, which carries
// its graph and a warm engine) or a graph file (-graph or the positional
// argument).
func loadInput(ctx context.Context, graphPath, loadPath string) (*ccsp.Graph, *ccsp.Engine, error) {
	if loadPath != "" {
		if graphPath != "" || flag.NArg() != 0 {
			return nil, nil, fmt.Errorf("-load restores the snapshot's own graph; drop the graph argument")
		}
		f, err := os.Open(loadPath)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		eng, err := ccsp.LoadEngine(ctx, f)
		if err != nil {
			return nil, nil, fmt.Errorf("load %s: %w", loadPath, err)
		}
		return eng.Graph(), eng, nil
	}
	switch {
	case graphPath != "" && flag.NArg() == 0:
	case graphPath == "" && flag.NArg() == 1:
		graphPath = flag.Arg(0)
	default:
		return nil, nil, fmt.Errorf("usage: ccsp [flags] <graph-file> (or -graph/-load)")
	}
	g, err := ccsp.ReadGraphFile(graphPath)
	if err != nil {
		return nil, nil, err
	}
	return g, nil, nil
}

// queries dispatches each algorithm either through a persistent engine
// (-save/-load: query-only stats) or the historical one-shot calls
// (stats include preprocessing).
type queries struct {
	apsp     func(ctx context.Context) (*ccsp.APSPResult, error)
	sssp     func(ctx context.Context, src int) (*ccsp.SSSPResult, error)
	mssp     func(ctx context.Context, srcs []int) (*ccsp.MSSPResult, error)
	diameter func(ctx context.Context) (*ccsp.DiameterResult, error)
	knearest func(ctx context.Context, k int) (*ccsp.KNearestResult, error)
}

func newQueries(g *ccsp.Graph, eng *ccsp.Engine, opts ccsp.Options) queries {
	if eng != nil {
		return queries{
			apsp:     eng.APSP,
			sssp:     eng.SSSP,
			mssp:     eng.MSSP,
			diameter: eng.Diameter,
			knearest: eng.KNearest,
		}
	}
	return queries{
		apsp: func(ctx context.Context) (*ccsp.APSPResult, error) {
			if g.Unweighted() {
				return ccsp.APSPUnweighted(ctx, g, opts)
			}
			return ccsp.APSPWeighted(ctx, g, opts)
		},
		sssp: func(ctx context.Context, src int) (*ccsp.SSSPResult, error) { return ccsp.SSSP(ctx, g, src, opts) },
		mssp: func(ctx context.Context, srcs []int) (*ccsp.MSSPResult, error) {
			return ccsp.MSSP(ctx, g, srcs, opts)
		},
		diameter: func(ctx context.Context) (*ccsp.DiameterResult, error) { return ccsp.Diameter(ctx, g, opts) },
		knearest: func(ctx context.Context, k int) (*ccsp.KNearestResult, error) {
			return ccsp.KNearest(ctx, g, k, opts)
		},
	}
}

// saveEngine writes the engine snapshot to path (no-op for empty path);
// quiet suppresses the confirmation line.
func saveEngine(eng *ccsp.Engine, path string, quiet bool) error {
	if path == "" {
		return nil
	}
	if eng == nil {
		return fmt.Errorf("internal: -save without an engine")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := eng.Save(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if !quiet {
		fmt.Printf("saved engine snapshot to %s\n", path)
	}
	return nil
}

// runBatch preprocesses the graph once (or reuses a -load'ed engine) and
// answers every query line from the batch file, reporting per-query stats
// and the amortization summary: total rounds actually paid vs what
// one-shot calls would have cost.
func runBatch(ctx context.Context, g *ccsp.Graph, eng *ccsp.Engine, opts ccsp.Options, path string, quiet bool, savePath string) error {
	in := os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}

	if eng == nil {
		var err error
		if eng, err = ccsp.NewEngine(ctx, g, opts); err != nil {
			return err
		}
	}
	pre := eng.PreprocessStats()
	fmt.Printf("preprocess: %s\n", pre.Total)
	for _, b := range pre.Builds {
		fmt.Printf("  %s eps=%g beta=%d edges=%d: %s\n", b.Kind, b.Eps, b.Beta, b.Edges, b.Stats)
	}

	queryRounds := 0
	nq := 0
	sc := bufio.NewScanner(in)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		var stats ccsp.Stats
		switch fields[0] {
		case "mssp":
			if len(fields) != 2 {
				return fmt.Errorf("%s:%d: want 'mssp s1,s2,...'", path, line)
			}
			srcList, err := parseSources(fields[1])
			if err != nil {
				return fmt.Errorf("%s:%d: %w", path, line, err)
			}
			res, err := eng.MSSP(ctx, srcList)
			if err != nil {
				return fmt.Errorf("%s:%d: %w", path, line, err)
			}
			if !quiet {
				for v := 0; v < g.N(); v++ {
					parts := make([]string, len(res.Sources))
					for i := range res.Sources {
						parts[i] = distStr(res.Dist[v][i])
					}
					fmt.Printf("%d\t%s\n", v, strings.Join(parts, "\t"))
				}
			}
			stats = res.Stats
		case "sssp":
			if len(fields) != 2 {
				return fmt.Errorf("%s:%d: want 'sssp src'", path, line)
			}
			s, err := strconv.Atoi(fields[1])
			if err != nil {
				return fmt.Errorf("%s:%d: %w", path, line, err)
			}
			res, err := eng.SSSP(ctx, s)
			if err != nil {
				return fmt.Errorf("%s:%d: %w", path, line, err)
			}
			if !quiet {
				for v, d := range res.Dist {
					fmt.Printf("%d\t%s\n", v, distStr(d))
				}
			}
			stats = res.Stats
		case "apsp":
			if len(fields) != 1 {
				return fmt.Errorf("%s:%d: want 'apsp' with no arguments", path, line)
			}
			res, err := eng.APSP(ctx)
			if err != nil {
				return fmt.Errorf("%s:%d: %w", path, line, err)
			}
			if !quiet {
				printMatrix(res.Dist)
			}
			stats = res.Stats
		case "diameter":
			if len(fields) != 1 {
				return fmt.Errorf("%s:%d: want 'diameter' with no arguments", path, line)
			}
			res, err := eng.Diameter(ctx)
			if err != nil {
				return fmt.Errorf("%s:%d: %w", path, line, err)
			}
			fmt.Printf("diameter estimate: %d\n", res.Estimate)
			stats = res.Stats
		case "knearest":
			if len(fields) != 2 {
				return fmt.Errorf("%s:%d: want 'knearest k'", path, line)
			}
			kq, err := strconv.Atoi(fields[1])
			if err != nil {
				return fmt.Errorf("%s:%d: %w", path, line, err)
			}
			res, err := eng.KNearest(ctx, kq)
			if err != nil {
				return fmt.Errorf("%s:%d: %w", path, line, err)
			}
			if !quiet {
				for v, nb := range res.Neighbors {
					fmt.Printf("%d:", v)
					for _, e := range nb {
						fmt.Printf(" %d(d=%d,via=%d)", e.Node, e.Dist, e.FirstHop)
					}
					fmt.Println()
				}
			}
			stats = res.Stats
		default:
			return fmt.Errorf("%s:%d: unknown query %q", path, line, fields[0])
		}
		fmt.Printf("query %q: %s\n", text, stats)
		queryRounds += stats.TotalRounds
		nq++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	pre = eng.PreprocessStats() // lazy artifacts may have been added
	fmt.Printf("batch: %d queries, %d preprocessing rounds (%d builds) + %d query rounds = %d total\n",
		nq, pre.Total.TotalRounds, len(pre.Builds), queryRounds, pre.Total.TotalRounds+queryRounds)
	return saveEngine(eng, savePath, false)
}

func parseSources(csv string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(csv, ",") {
		s, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad source list: %w", err)
		}
		out = append(out, s)
	}
	return out, nil
}

func distStr(d int64) string {
	if d >= ccsp.Unreachable {
		return "inf"
	}
	return strconv.FormatInt(d, 10)
}

func printMatrix(dist [][]int64) {
	for _, row := range dist {
		parts := make([]string, len(row))
		for i, d := range row {
			parts[i] = distStr(d)
		}
		fmt.Println(strings.Join(parts, "\t"))
	}
}
