// Command ccsp computes shortest-path structures on a graph file using
// the paper's Congested Clique algorithms and reports the simulated
// round complexity.
//
// Graphs are read as whitespace edge lists ("u v [w]", 0-based IDs,
// optional weight, '#' comments) or the DIMACS shortest-path format
// (.gr), auto-detected; pass the path positionally or via -graph.
//
// Usage:
//
//	ccsp -algo apsp  -eps 0.5 graph.txt     # (2+ε)/(2+ε,(1+ε)W) APSP
//	ccsp -algo apsp3 graph.txt              # (3+ε) weighted APSP (§6.1)
//	ccsp -timeout 30s -algo apsp big.gr     # bound the whole run; Ctrl-C also aborts cleanly
//	ccsp -exec direct -algo apsp big.gr     # direct kernel execution: identical answers, no simulator
//	ccsp -algo sssp  -src 0 graph.txt       # exact SSSP (Theorem 33)
//	ccsp -algo mssp  -sources 0,5,9 g.txt   # (1+ε) MSSP (Theorem 3)
//	ccsp -algo diameter graph.txt           # near-3/2 diameter (§7.2)
//	ccsp -algo knearest -k 4 graph.txt      # k nearest + routing witnesses
//	ccsp -algo sourcedetect -sources 0,3 -d 4 -k 2 g.txt  # (S,d,k) detection (Thm 19)
//	ccsp -batch queries.txt graph.txt       # preprocess once, answer many
//	ccsp -graph road.gr -save warm.snap -algo mssp -sources 3   # persist the engine
//	ccsp -load warm.snap -algo diameter     # reuse it: zero preprocessing rounds
//	ccsp -server http://localhost:8080 -algo mssp -sources 0    # query a running ccspd
//	ccsp -server http://localhost:8080 -batch queries.txt       # one POST /v1/batch
//	ccsp -server http://localhost:8080 -graphid roads -algo diameter  # a named graph on a multi-graph daemon
//	ccsp -update 1,5,100 -algo sssp -src 0 graph.txt            # mutate first (w=-1 deletes), then answer
//	ccsp -server http://localhost:8080 -update 1,5,100 -algo sssp -src 0  # POST /v1/update, then query
//	ccsp -cluster http://a:8080,http://b:8080 -graphid roads -algo sssp -src 0  # route through a sharded cluster
//
// With -save or -load, queries run through a persistent ccsp.Engine
// snapshot (the format cmd/ccspd serves from): -save builds the engine
// and writes it after answering, -load restores one and pays no
// preprocessing; the reported stats then cover the query run only, with
// the preprocessing cost printed separately.
//
// With -server, queries are sent to a running ccspd daemon over the
// typed query plane (POST /v1/query; -batch becomes one POST /v1/batch)
// through the client package - no local graph, no local simulation, and
// the same typed errors as local runs. -graphid targets a named graph
// on a multi-graph daemon. With -cluster (comma-separated replica base
// URLs), queries route through the consistent-hash ring to the replica
// owning -graphid, failing over to live ring successors when the owner
// is down - the same placement cmd/ccring prints.
//
// Batch mode loads the graph once, preprocesses it into a reusable
// hopset artifact (ccsp.Engine), and answers one query per line of the
// batch file ("-" for stdin) through Engine.Batch, paying the hopset
// construction once for the whole batch. Query lines ('#' comments and
// blank lines skipped):
//
//	mssp 0,5,9          # (1+ε) multi-source distances
//	sssp 3              # exact single-source distances
//	apsp                # all-pairs (picks Thm 28 or 31 by weights)
//	apsp3               # all-pairs, (3+ε) variant
//	distance 0 5        # one (1+ε) pair
//	diameter            # near-3/2 diameter
//	knearest 4          # k nearest neighbors
//	sourcedetect 0,3 4 2  # sources d k
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"github.com/congestedclique/ccsp"
	"github.com/congestedclique/ccsp/api"
	"github.com/congestedclique/ccsp/client"
)

func main() {
	if err := run(); err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			// -timeout expired: exit 124 like timeout(1), distinct from
			// an operator Ctrl-C.
			fmt.Fprintln(os.Stderr, "ccsp: timed out:", err)
			os.Exit(124)
		case errors.Is(err, ccsp.ErrCanceled):
			fmt.Fprintln(os.Stderr, "ccsp: interrupted:", err)
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "ccsp:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		algo       = flag.String("algo", "apsp", "apsp | apsp3 | sssp | mssp | diameter | knearest | sourcedetect")
		eps        = flag.Float64("eps", 0.5, "approximation parameter ε")
		src        = flag.Int("src", 0, "source for sssp")
		sources    = flag.String("sources", "0", "comma-separated sources for mssp/sourcedetect")
		k          = flag.Int("k", 4, "k for knearest/sourcedetect")
		d          = flag.Int("d", 4, "hop bound d for sourcedetect")
		batch      = flag.String("batch", "", "batch query file ('-' for stdin): preprocess once, answer every line")
		quiet      = flag.Bool("quiet", false, "print only the stats line")
		graphPath  = flag.String("graph", "", "graph file (edge list or DIMACS .gr); alternative to the positional argument")
		savePath   = flag.String("save", "", "write the preprocessed engine snapshot here after answering")
		loadPath   = flag.String("load", "", "restore a preprocessed engine snapshot instead of building one")
		serverURL  = flag.String("server", "", "base URL of a running ccspd daemon: query it instead of simulating locally")
		clusterCSV = flag.String("cluster", "", "comma-separated ccspd replica base URLs: route queries through the consistent-hash ring")
		graphID    = flag.String("graphid", "", "graph ID to query on a multi-graph daemon or cluster (empty = the default graph)")
		timeout    = flag.Duration("timeout", 0, "abort preprocessing+queries after this long (0 = no limit)")
		execMode   = flag.String("exec", "simulated", "execution mode: simulated (round accounting) | direct (kernel, identical answers, no rounds)")
	)
	var updates updateFlags
	flag.Var(&updates, "update", `edge update "u,v,w" applied before answering; w=-1 deletes {u,v} (repeatable)`)
	flag.Parse()
	exec, err := ccsp.ParseExecution(*execMode)
	if err != nil {
		return err
	}
	opts := ccsp.Options{Epsilon: *eps, Execution: exec}

	// Ctrl-C (or -timeout) cancels the context; the simulator unwinds at
	// its next barrier and the run exits cleanly instead of burning CPU.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *serverURL != "" || *clusterCSV != "" {
		if *graphPath != "" || *loadPath != "" || *savePath != "" || flag.NArg() != 0 {
			return fmt.Errorf("-server/-cluster query remote daemons; drop -graph/-load/-save and the graph argument")
		}
		if *serverURL != "" && *clusterCSV != "" {
			return fmt.Errorf("use -server (one daemon) or -cluster (a replica set), not both")
		}
		var rc remote
		if *clusterCSV != "" {
			var members []string
			for _, m := range strings.Split(*clusterCSV, ",") {
				if m = strings.TrimSpace(m); m != "" {
					members = append(members, m)
				}
			}
			if len(members) == 0 {
				return fmt.Errorf("-cluster is empty")
			}
			cl := client.NewCluster(members)
			defer cl.Close()
			rc = cl.Graph(*graphID)
			if len(updates) > 0 {
				return fmt.Errorf("-update needs -server (send updates to the replica owning the graph directly)")
			}
		} else {
			c := client.New(*serverURL)
			rc = c
			if len(updates) > 0 {
				ups := make([]api.EdgeUpdate, len(updates))
				for i, e := range updates {
					ups[i] = api.EdgeUpdate{U: e.U, V: e.V, W: e.W}
				}
				ur, err := c.Update(ctx, *graphID, ups)
				if err != nil {
					return err
				}
				if !*quiet {
					fmt.Printf("applied %d update(s); graph epoch %d\n", ur.Applied, ur.Epoch)
				}
			}
		}
		return runRemote(ctx, rc, *graphID, *algo, *src, *sources, *k, *d, *batch, *quiet)
	}
	if *graphID != "" {
		return fmt.Errorf("-graphid needs -server or -cluster (local graphs are unnamed)")
	}

	g, eng, err := loadInput(ctx, *graphPath, *loadPath)
	if err != nil {
		return err
	}

	// -update mutates the graph before any answering: build (or reuse)
	// the engine, run the updates through a DynamicEngine - the same
	// validate/apply/rebuild path the daemon uses - and continue with
	// the published generation. -save then persists the new epoch.
	if len(updates) > 0 {
		if eng == nil {
			if eng, err = ccsp.NewEngine(ctx, g, opts); err != nil {
				return err
			}
		}
		dyn := ccsp.NewDynamicEngine(eng)
		epoch, err := dyn.Update(ctx, updates)
		dyn.Close()
		if err != nil {
			return err
		}
		eng = dyn.Engine()
		g = eng.Graph()
		if !*quiet {
			fmt.Printf("applied %d update(s); graph epoch %d\n", len(updates), epoch)
		}
	}

	if *batch != "" {
		return runBatchLocal(ctx, g, eng, opts, *batch, *quiet, *savePath)
	}
	// -save needs an engine even when -load didn't provide one; building
	// it up front also moves the preprocessing cost out of the query
	// stats, which is the point of the snapshot.
	if eng == nil && *savePath != "" {
		if eng, err = ccsp.NewEngine(ctx, g, opts); err != nil {
			return err
		}
	}

	if eng != nil {
		// Engine mode answers through the typed query plane: the same
		// api.Request the daemon and client speak, printed identically to
		// the historical per-algorithm output.
		req, err := requestForAlgo(*algo, *src, *sources, *k, *d)
		if err != nil {
			return err
		}
		resp, err := eng.Query(ctx, req)
		if err != nil {
			return err
		}
		printResponse(resp, g.N(), *quiet)
		if !*quiet {
			fmt.Printf("preprocess (not in the stats line above): %s\n", eng.PreprocessStats().Total)
		}
		return saveEngine(eng, *savePath, *quiet)
	}
	return runOneShot(ctx, g, opts, *algo, *src, *sources, *k, *d, *quiet)
}

// requestForAlgo translates the -algo flag set into a typed request.
func requestForAlgo(algo string, src int, sources string, k, d int) (api.Request, error) {
	switch algo {
	case "apsp":
		return api.Request{Kind: api.KindAPSP}, nil
	case "apsp3":
		return api.Request{Kind: api.KindAPSP, APSP: &api.APSPParams{Variant: api.APSPWeighted3}}, nil
	case "sssp":
		return api.Request{Kind: api.KindSSSP, SSSP: &api.SSSPParams{Source: src}}, nil
	case "mssp":
		srcList, err := parseSources(sources)
		if err != nil {
			return api.Request{}, err
		}
		return api.Request{Kind: api.KindMSSP, MSSP: &api.MSSPParams{Sources: srcList}}, nil
	case "diameter":
		return api.Request{Kind: api.KindDiameter}, nil
	case "knearest":
		return api.Request{Kind: api.KindKNearest, KNearest: &api.KNearestParams{K: k}}, nil
	case "sourcedetect":
		srcList, err := parseSources(sources)
		if err != nil {
			return api.Request{}, err
		}
		return api.Request{Kind: api.KindSourceDetection,
			SourceDetection: &api.SourceDetectionParams{Sources: srcList, D: d, K: k}}, nil
	default:
		return api.Request{}, fmt.Errorf("unknown algorithm %q", algo)
	}
}

// runOneShot preserves the historical single-shot semantics: no engine,
// stats include the preprocessing (the one-shot functions fold it in).
func runOneShot(ctx context.Context, g *ccsp.Graph, opts ccsp.Options, algo string, src int, sources string, k, d int, quiet bool) error {
	switch algo {
	case "apsp":
		var res *ccsp.APSPResult
		var err error
		if g.Unweighted() {
			res, err = ccsp.APSPUnweighted(ctx, g, opts)
		} else {
			res, err = ccsp.APSPWeighted(ctx, g, opts)
		}
		if err != nil {
			return err
		}
		if !quiet {
			printMatrix(res.Dist)
		}
		fmt.Println(res.Stats)
	case "apsp3":
		res, err := ccsp.APSPWeighted3(ctx, g, opts)
		if err != nil {
			return err
		}
		if !quiet {
			printMatrix(res.Dist)
		}
		fmt.Println(res.Stats)
	case "sssp":
		res, err := ccsp.SSSP(ctx, g, src, opts)
		if err != nil {
			return err
		}
		if !quiet {
			printVector(res.Dist)
		}
		fmt.Println(res.Stats)
	case "mssp":
		srcList, err := parseSources(sources)
		if err != nil {
			return err
		}
		res, err := ccsp.MSSP(ctx, g, srcList, opts)
		if err != nil {
			return err
		}
		if !quiet {
			printIndexedMatrix(res.Dist) // rows are nodes, columns the sorted sources
		}
		fmt.Println(res.Stats)
	case "diameter":
		res, err := ccsp.Diameter(ctx, g, opts)
		if err != nil {
			return err
		}
		fmt.Printf("diameter estimate: %d\n", res.Estimate)
		fmt.Println(res.Stats)
	case "knearest":
		res, err := ccsp.KNearest(ctx, g, k, opts)
		if err != nil {
			return err
		}
		if !quiet {
			printNeighborRows(wireLists(res.Neighbors), true)
		}
		fmt.Println(res.Stats)
	case "sourcedetect":
		srcList, err := parseSources(sources)
		if err != nil {
			return err
		}
		res, err := ccsp.SourceDetection(ctx, g, srcList, d, k, opts)
		if err != nil {
			return err
		}
		if !quiet {
			printNeighborRows(wireLists(res.Detected), false)
		}
		fmt.Println(res.Stats)
	default:
		return fmt.Errorf("unknown algorithm %q", algo)
	}
	return nil
}

// remote is what runRemote needs from a remote query plane; both
// *client.Client (one daemon) and *client.GraphView (a cluster scoped
// to one graph) satisfy it.
type remote interface {
	Query(ctx context.Context, req api.Request) (*api.Response, error)
	Batch(ctx context.Context, reqs []api.Request) ([]api.Response, error)
	Health(ctx context.Context) (*api.Health, error)
}

// runRemote answers through a ccspd daemon or cluster: -batch becomes
// one POST /v1/batch (fanned out per shard under -cluster), single
// queries one POST /v1/query.
func runRemote(ctx context.Context, rc remote, graphID, algo string, src int, sources string, k, d int, batch string, quiet bool) error {
	h, err := rc.Health(ctx)
	if err != nil {
		return err
	}
	if batch != "" {
		return runBatchRemote(ctx, rc, graphID, h.Nodes, batch, quiet)
	}
	req, err := requestForAlgo(algo, src, sources, k, d)
	if err != nil {
		return err
	}
	req.Graph = graphID
	resp, err := rc.Query(ctx, req)
	if err != nil {
		return err
	}
	// Health reports the answering replica's default graph; for named
	// graphs the response's own vector lengths are the honest n.
	n := responseNodes(resp)
	if n == 0 {
		n = h.Nodes
	}
	printResponse(resp, n, quiet)
	return nil
}

// loadInput resolves the graph source: a snapshot (-load, which carries
// its graph and a warm engine) or a graph file (-graph or the positional
// argument).
func loadInput(ctx context.Context, graphPath, loadPath string) (*ccsp.Graph, *ccsp.Engine, error) {
	if loadPath != "" {
		if graphPath != "" || flag.NArg() != 0 {
			return nil, nil, fmt.Errorf("-load restores the snapshot's own graph; drop the graph argument")
		}
		f, err := os.Open(loadPath)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		eng, err := ccsp.LoadEngine(ctx, f)
		if err != nil {
			return nil, nil, fmt.Errorf("load %s: %w", loadPath, err)
		}
		return eng.Graph(), eng, nil
	}
	switch {
	case graphPath != "" && flag.NArg() == 0:
	case graphPath == "" && flag.NArg() == 1:
		graphPath = flag.Arg(0)
	default:
		return nil, nil, fmt.Errorf("usage: ccsp [flags] <graph-file> (or -graph/-load/-server)")
	}
	g, err := ccsp.ReadGraphFile(graphPath)
	if err != nil {
		return nil, nil, err
	}
	return g, nil, nil
}

// saveEngine writes the engine snapshot to path (no-op for empty path);
// quiet suppresses the confirmation line.
func saveEngine(eng *ccsp.Engine, path string, quiet bool) error {
	if path == "" {
		return nil
	}
	if eng == nil {
		return fmt.Errorf("internal: -save without an engine")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := eng.Save(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if !quiet {
		fmt.Printf("saved engine snapshot to %s\n", path)
	}
	return nil
}

// updateFlags collects repeated -update "u,v,w" flags (w = -1 deletes
// the edge {u, v}).
type updateFlags []ccsp.EdgeUpdate

func (u *updateFlags) String() string {
	parts := make([]string, len(*u))
	for i, e := range *u {
		parts[i] = fmt.Sprintf("%d,%d,%d", e.U, e.V, e.W)
	}
	return strings.Join(parts, " ")
}

func (u *updateFlags) Set(v string) error {
	parts := strings.Split(v, ",")
	if len(parts) != 3 {
		return fmt.Errorf(`bad update %q (want "u,v,w"; w=-1 deletes)`, v)
	}
	a, err1 := strconv.Atoi(strings.TrimSpace(parts[0]))
	b, err2 := strconv.Atoi(strings.TrimSpace(parts[1]))
	w, err3 := strconv.ParseInt(strings.TrimSpace(parts[2]), 10, 64)
	if err1 != nil || err2 != nil || err3 != nil {
		return fmt.Errorf(`bad update %q (want "u,v,w"; w=-1 deletes)`, v)
	}
	*u = append(*u, ccsp.EdgeUpdate{U: a, V: b, W: w})
	return nil
}

func parseSources(csv string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(csv, ",") {
		s, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad source list: %w", err)
		}
		out = append(out, s)
	}
	return out, nil
}
