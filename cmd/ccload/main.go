// Command ccload is the workload generator for ccspd: it replays a
// configurable mix of query kinds against one daemon or a cluster and
// reports throughput, latency quantiles and a typed error census -
// the external measurement of the serving claims (and of admission
// control: under deliberate overload the interesting output is the
// shed count and how fast those 503s came back).
//
// Usage:
//
//	ccload -targets http://localhost:8080                        # 5s mixed workload, closed loop
//	ccload -targets http://localhost:8080 -qps 500 -duration 30s # open loop at fixed arrival rate
//	ccload -targets http://a:8080,http://b:8080 -graphs g1,g2    # drive a sharded cluster
//	ccload -targets ... -mix distance=70,sssp=20,mssp=10 -dist zipf -batch 16
//	ccload -targets ... -mix distance=90,update=10 -update-maxw 9   # mixed read/write traffic
//	ccload -targets ... -format bench -label "overload 2x"       # BENCH-compatible JSON row
//
// The node-ID space is discovered from the first target's /healthz
// (override with -n). Closed loop runs -concurrency workers
// back-to-back; -qps switches to open-loop arrivals where overload
// becomes visible as typed "overloaded" errors instead of
// self-throttling. By default requests are not retried, so shed load
// is counted rather than hidden; -retries enables the client's
// Retry-After-aware backoff to measure the retrying-client view.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/congestedclique/ccsp/client"
	"github.com/congestedclique/ccsp/internal/loadgen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ccload:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		targets     = flag.String("targets", "", "comma-separated daemon base URLs; one = direct client, several = cluster routing (required)")
		graphs      = flag.String("graphs", "", "comma-separated graph IDs to spread requests over (empty = default graph)")
		mixFlag     = flag.String("mix", "", "kind mix as kind=weight, e.g. distance=70,sssp=20,update=5 (default mostly-distance)")
		dist        = flag.String("dist", "uniform", "source-ID distribution: uniform | zipf")
		duration    = flag.Duration("duration", 5*time.Second, "run length")
		concurrency = flag.Int("concurrency", 8, "workers (closed-loop in-flight bound / open-loop pool)")
		qps         = flag.Float64("qps", 0, "open-loop aggregate arrival rate (0 = closed loop)")
		batch       = flag.Int("batch", 0, "group requests into /v1/batch operations of this size (0/1 = single queries)")
		nodes       = flag.Int("n", 0, "node-ID space (0 = discover via the first target's /healthz)")
		updateMaxW  = flag.Int64("update-maxw", 16, "max weight for generated edge updates (with update=N in -mix)")
		seed        = flag.Int64("seed", 1, "request-stream seed")
		retries     = flag.Int("retries", 0, "client retries per request (0 = none: shed load is counted, not hidden)")
		retryBase   = flag.Duration("retry-base", 100*time.Millisecond, "retry backoff base (with -retries)")
		wait        = flag.Duration("wait", 10*time.Second, "how long to wait for the first target to become healthy")
		format      = flag.String("format", "text", "output: text | json | bench")
		label       = flag.String("label", "", "row label for -format bench (default: workload description)")
	)
	flag.Parse()

	if *targets == "" {
		return fmt.Errorf("-targets is required")
	}
	members := splitList(*targets)
	mix, err := loadgen.ParseMix(*mixFlag)
	if err != nil {
		return err
	}
	source, err := loadgen.ParseDistribution(*dist)
	if err != nil {
		return err
	}
	if *format != "text" && *format != "json" && *format != "bench" {
		return fmt.Errorf("unknown format %q (text | json | bench)", *format)
	}

	var copts []client.Option
	if *retries > 0 {
		copts = append(copts, client.WithRetry(*retries, *retryBase))
	}

	ctx := context.Background()
	n := *nodes
	if n == 0 {
		n, err = discoverNodes(ctx, members[0], *wait)
		if err != nil {
			return err
		}
	}

	var target loadgen.Target
	if len(members) == 1 {
		target = client.New(members[0], copts...)
	} else {
		cl := client.NewCluster(members, client.WithClientOptions(copts...))
		defer cl.Close()
		cl.Refresh(ctx) // one synchronous sweep so routing starts warm
		target = cl
	}

	rep, err := loadgen.Run(ctx, target, loadgen.Config{
		Mix:         mix,
		Graphs:      splitList(*graphs),
		Nodes:       n,
		Source:      source,
		Duration:    *duration,
		Concurrency: *concurrency,
		QPS:         *qps,
		BatchSize:   *batch,
		UpdateMaxW:  *updateMaxW,
		Seed:        *seed,
	})
	if err != nil {
		return err
	}

	switch *format {
	case "text":
		rep.Fprint(os.Stdout)
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	case "bench":
		// The jsonTable shape of ccbench -format json, so load rows can
		// sit next to experiment snapshots in BENCH_*.json files.
		table := []struct {
			ID             string     `json:"id"`
			Title          string     `json:"title"`
			Columns        []string   `json:"columns"`
			Rows           [][]string `json:"rows"`
			ElapsedSeconds float64    `json:"elapsed_seconds"`
		}{{
			ID:             "LOAD",
			Title:          "ccload workload replay",
			Columns:        loadgen.BenchColumns(),
			Rows:           [][]string{rep.BenchRow(*label)},
			ElapsedSeconds: rep.Seconds,
		}}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(table)
	}
	return nil
}

// splitList splits a comma-separated flag, trimming blanks.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// discoverNodes polls target's /healthz until it answers healthy (the
// daemon listens before its graphs finish loading) and returns the
// default graph's node count.
func discoverNodes(ctx context.Context, target string, wait time.Duration) (int, error) {
	c := client.New(target)
	deadline := time.Now().Add(wait)
	for {
		hctx, cancel := context.WithTimeout(ctx, 2*time.Second)
		h, err := c.Health(hctx)
		cancel()
		if err == nil && h.Nodes > 0 {
			return h.Nodes, nil
		}
		if time.Now().After(deadline) {
			if err == nil {
				return 0, fmt.Errorf("%s reports %d nodes; pass -n to set the ID space explicitly", target, h.Nodes)
			}
			return 0, fmt.Errorf("target %s not healthy after %s: %w", target, wait, err)
		}
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case <-time.After(200 * time.Millisecond):
		}
	}
}
