// Command ccbench regenerates the reproduction experiments of DESIGN.md §4
// (one table per theorem of the paper, plus ablations) and prints them as
// Markdown tables or JSON.
//
// Usage:
//
//	ccbench -list                    # list experiments
//	ccbench -exp E7                  # run one experiment (quick scale)
//	ccbench -exp E6,E7,E14           # run a comma-separated set
//	ccbench -exp all -scale full     # regenerate everything for EXPERIMENTS.md
//	ccbench -exp E13 -format json    # engine-scaling timings as JSON
//	ccbench -workers 8 -exp E8       # run the simulator on 8 pool workers
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"github.com/congestedclique/ccsp/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ccbench:", err)
		os.Exit(1)
	}
}

// jsonTable is the -format json shape of one experiment: the rendered
// table plus the harness-measured elapsed wall-clock. For E13 the rows
// carry the engine's per-collective timing stats (route/sort/bcast ms).
type jsonTable struct {
	ID             string     `json:"id"`
	Title          string     `json:"title"`
	Columns        []string   `json:"columns"`
	Rows           [][]string `json:"rows"`
	Notes          []string   `json:"notes,omitempty"`
	ElapsedSeconds float64    `json:"elapsed_seconds"`
}

func run() error {
	var (
		exp        = flag.String("exp", "all", "experiment ID (E1..E18, A1..A4), comma-separated set, or 'all'")
		scale      = flag.String("scale", "quick", "quick | full")
		format     = flag.String("format", "md", "md | json")
		workers    = flag.Int("workers", 0, "engine worker-pool size (0 = GOMAXPROCS, 1 = serial)")
		list       = flag.Bool("list", false, "list experiments and exit")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile (after the run) to this file")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return nil
	}
	var s bench.Scale
	switch *scale {
	case "quick":
		s = bench.Quick
	case "full":
		s = bench.Full
	default:
		return fmt.Errorf("unknown scale %q", *scale)
	}
	if *format != "md" && *format != "json" {
		return fmt.Errorf("unknown format %q", *format)
	}
	if *workers < 0 {
		return fmt.Errorf("negative -workers %d", *workers)
	}
	cfg := bench.Config{Scale: s, Workers: *workers}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return fmt.Errorf("-memprofile: %w", err)
		}
		defer func() {
			runtime.GC() // settle the heap so the profile shows live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "ccbench: -memprofile:", err)
			}
			f.Close()
		}()
	}

	var ids []string
	if *exp == "all" {
		for _, e := range bench.All() {
			ids = append(ids, e.ID)
		}
	} else {
		for _, id := range strings.Split(*exp, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
	}
	var jsonOut []jsonTable
	for _, id := range ids {
		start := time.Now()
		tab, err := bench.RunConfig(id, cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		elapsed := time.Since(start)
		if *format == "md" {
			tab.Fprint(os.Stdout)
			fmt.Printf("(%s completed in %.1fs)\n\n", id, elapsed.Seconds())
			continue
		}
		jsonOut = append(jsonOut, jsonTable{
			ID:             tab.ID,
			Title:          tab.Title,
			Columns:        tab.Columns,
			Rows:           tab.Rows,
			Notes:          tab.Notes,
			ElapsedSeconds: elapsed.Seconds(),
		})
	}
	if *format == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(jsonOut)
	}
	return nil
}
