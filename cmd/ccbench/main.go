// Command ccbench regenerates the reproduction experiments of DESIGN.md §4
// (one table per theorem of the paper, plus ablations) and prints them as
// Markdown tables.
//
// Usage:
//
//	ccbench -list                 # list experiments
//	ccbench -exp E7               # run one experiment (quick scale)
//	ccbench -exp all -scale full  # regenerate everything for EXPERIMENTS.md
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/congestedclique/ccsp/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ccbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp   = flag.String("exp", "all", "experiment ID (E1..E12, A1..A3) or 'all'")
		scale = flag.String("scale", "quick", "quick | full")
		list  = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return nil
	}
	var s bench.Scale
	switch *scale {
	case "quick":
		s = bench.Quick
	case "full":
		s = bench.Full
	default:
		return fmt.Errorf("unknown scale %q", *scale)
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = ids[:0]
		for _, e := range bench.All() {
			ids = append(ids, e.ID)
		}
	}
	for _, id := range ids {
		start := time.Now()
		tab, err := bench.Run(id, s)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		tab.Fprint(os.Stdout)
		fmt.Printf("(%s completed in %.1fs)\n\n", id, time.Since(start).Seconds())
	}
	return nil
}
