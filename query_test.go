package ccsp

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"github.com/congestedclique/ccsp/api"
)

// TestQueryMatchesEngineMethods: every api.Request kind dispatched through
// Engine.Query returns the same answer (modulo the -1 wire convention for
// unreachable) and the same deterministic stats as the direct Engine call.
func TestQueryMatchesEngineMethods(t *testing.T) {
	gr := testGraph(20, 25, 8, 3)
	eng, err := NewEngine(context.Background(), gr, Options{Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	checkStats := func(kind api.Kind, got *api.Stats, want Stats) {
		t.Helper()
		if got == nil {
			t.Fatalf("%s: response without stats", kind)
		}
		w := wireStats(want)
		if *got != *w {
			t.Errorf("%s: stats %+v, want %+v", kind, *got, *w)
		}
	}

	// SSSP.
	wantS, err := eng.SSSP(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := eng.Query(ctx, api.Request{Kind: api.KindSSSP, SSSP: &api.SSSPParams{Source: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Kind != api.KindSSSP || rs.SSSP == nil {
		t.Fatalf("sssp response shape: %+v", rs)
	}
	if !reflect.DeepEqual(rs.SSSP.Dist, wireVec(wantS.Dist)) || rs.SSSP.Iterations != wantS.Iterations {
		t.Error("sssp payload differs from direct call")
	}
	checkStats(api.KindSSSP, rs.Stats, wantS.Stats)

	// MSSP normalizes sources the same way the engine does.
	wantM, err := eng.MSSP(ctx, []int{7, 2})
	if err != nil {
		t.Fatal(err)
	}
	rm, err := eng.Query(ctx, api.Request{Kind: api.KindMSSP, MSSP: &api.MSSPParams{Sources: []int{2, 7, 2}}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rm.MSSP.Sources, wantM.Sources) || !reflect.DeepEqual(rm.MSSP.Dist, wireMat(wantM.Dist)) {
		t.Error("mssp payload differs from direct call")
	}
	checkStats(api.KindMSSP, rm.Stats, wantM.Stats)

	// APSP auto resolves to weighted on this graph and reports it.
	wantA, err := eng.APSPWeighted(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := eng.Query(ctx, api.Request{Kind: api.KindAPSP})
	if err != nil {
		t.Fatal(err)
	}
	if ra.APSP.Variant != api.APSPWeighted {
		t.Errorf("auto variant resolved to %q, want weighted", ra.APSP.Variant)
	}
	if !reflect.DeepEqual(ra.APSP.Dist, wireMat(wantA.Dist)) {
		t.Error("apsp payload differs from direct call")
	}
	checkStats(api.KindAPSP, ra.Stats, wantA.Stats)

	// The explicit weighted3 variant runs §6.1.
	wantA3, err := eng.APSPWeighted3(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ra3, err := eng.Query(ctx, api.Request{Kind: api.KindAPSP, APSP: &api.APSPParams{Variant: api.APSPWeighted3}})
	if err != nil {
		t.Fatal(err)
	}
	if ra3.APSP.Variant != api.APSPWeighted3 || !reflect.DeepEqual(ra3.APSP.Dist, wireMat(wantA3.Dist)) {
		t.Error("apsp weighted3 payload differs from direct call")
	}

	// Distance projects the single-source MSSP row.
	rd, err := eng.Query(ctx, api.Request{Kind: api.KindDistance, Distance: &api.DistanceParams{From: 2, To: 9}})
	if err != nil {
		t.Fatal(err)
	}
	if want := rm.MSSP.Dist[9][0]; rd.Distance.Distance != want || rd.Distance.Reachable != (want != api.Unreachable) {
		t.Errorf("distance(2,9) = %+v, want %d", rd.Distance, want)
	}

	// Diameter.
	wantD, err := eng.Diameter(ctx)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := eng.Query(ctx, api.Request{Kind: api.KindDiameter})
	if err != nil {
		t.Fatal(err)
	}
	if rr.Diameter.Estimate != wantD.Estimate {
		t.Errorf("diameter %d, want %d", rr.Diameter.Estimate, wantD.Estimate)
	}
	checkStats(api.KindDiameter, rr.Stats, wantD.Stats)

	// KNearest.
	wantK, err := eng.KNearest(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	rk, err := eng.Query(ctx, api.Request{Kind: api.KindKNearest, KNearest: &api.KNearestParams{K: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if rk.KNearest.K != 3 || !reflect.DeepEqual(rk.KNearest.Neighbors, wireNeighborLists(wantK.Neighbors)) {
		t.Error("knearest payload differs from direct call")
	}

	// SourceDetection.
	wantSD, err := eng.SourceDetection(ctx, []int{0, 5}, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	rsd, err := eng.Query(ctx, api.Request{Kind: api.KindSourceDetection,
		SourceDetection: &api.SourceDetectionParams{Sources: []int{0, 5}, D: 3, K: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if rsd.SourceDetection.D != 3 || rsd.SourceDetection.K != 2 ||
		!reflect.DeepEqual(rsd.SourceDetection.Detected, wireNeighborLists(wantSD.Detected)) {
		t.Error("source-detection payload differs from direct call")
	}
}

// TestQueryTypedErrors: Query preserves the errors.Is taxonomy of the
// direct methods, and structural violations are api.ErrMalformed.
func TestQueryTypedErrors(t *testing.T) {
	gr := testGraph(10, 8, 5, 4)
	eng, err := NewEngine(context.Background(), gr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	for name, tc := range map[string]struct {
		req  api.Request
		want error
	}{
		"malformed-union":  {api.Request{Kind: api.KindSSSP}, api.ErrMalformed},
		"unknown-kind":     {api.Request{Kind: "bfs"}, api.ErrMalformed},
		"bad-source":       {api.Request{Kind: api.KindSSSP, SSSP: &api.SSSPParams{Source: 99}}, ErrInvalidSource},
		"bad-mssp-source":  {api.Request{Kind: api.KindMSSP, MSSP: &api.MSSPParams{Sources: []int{-1}}}, ErrInvalidSource},
		"bad-distance-to":  {api.Request{Kind: api.KindDistance, Distance: &api.DistanceParams{From: 0, To: 88}}, ErrInvalidSource},
		"bad-knearest-k":   {api.Request{Kind: api.KindKNearest, KNearest: &api.KNearestParams{K: 0}}, ErrInvalidOption},
		"bad-sourcedet-d":  {api.Request{Kind: api.KindSourceDetection, SourceDetection: &api.SourceDetectionParams{Sources: []int{0}, D: 0, K: 1}}, ErrInvalidOption},
		"empty-source-set": {api.Request{Kind: api.KindMSSP, MSSP: &api.MSSPParams{Sources: []int{}}}, ErrInvalidSource},
	} {
		_, err := eng.Query(ctx, tc.req)
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", name, err, tc.want)
		}
	}

	// A dead context is ErrCanceled, like every entry point.
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Query(canceled, api.Request{Kind: api.KindDiameter}); !errors.Is(err, ErrCanceled) {
		t.Errorf("canceled ctx: err = %v, want ErrCanceled", err)
	}
}

// TestAPIErrorCodes pins the error → wire-code table both ways the server
// and client rely on.
func TestAPIErrorCodes(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, tc := range map[string]struct {
		err  error
		want api.ErrorCode
	}{
		"canceled":    {wrapRun("q", ctxWrap(context.Canceled)), api.CodeCanceled},
		"deadline":    {ctxWrap(context.DeadlineExceeded), api.CodeDeadline},
		"round-limit": {wrapRun("q", ErrRoundLimit), api.CodeRoundLimit},
		"source":      {ctxErrForTest(ErrInvalidSource), api.CodeInvalidSource},
		"option":      {ctxErrForTest(ErrInvalidOption), api.CodeInvalidOption},
		"malformed":   {ctxErrForTest(api.ErrMalformed), api.CodeMalformed},
		"unavailable": {ctxErrForTest(ErrUnavailable), api.CodeUnavailable},
		"overloaded":  {ctxErrForTest(ErrOverloaded), api.CodeOverloaded},
		"plain":       {errors.New("boom"), api.CodeInternal},
	} {
		if got := APIError(tc.err); got.Code != tc.want {
			t.Errorf("%s: code %q, want %q", name, got.Code, tc.want)
		}
	}
	if APIError(nil) != nil {
		t.Error("APIError(nil) != nil")
	}
	_ = ctx
}

func ctxWrap(sentinel error) error {
	return &wrapErr{msg: "ccsp: q: canceled", inner: []error{ErrCanceled, sentinel}}
}

func ctxErrForTest(sentinel error) error {
	return &wrapErr{msg: "wrapped", inner: []error{sentinel}}
}

// wrapErr is a minimal multi-target wrapper for table tests.
type wrapErr struct {
	msg   string
	inner []error
}

func (w *wrapErr) Error() string { return w.msg }
func (w *wrapErr) Unwrap() []error {
	return w.inner
}
