// Package ccsp is a Go implementation of "Fast Approximate Shortest Paths
// in the Congested Clique" (Censor-Hillel, Dory, Korhonen, Leitersdorf,
// PODC 2019): deterministic distance algorithms for the Congested Clique
// model, executed on a faithful round-accounting simulator.
//
// The package offers:
//
//   - APSPUnweighted: (2+ε)-approximate all-pairs shortest paths on
//     unweighted graphs in O(log²n/ε) rounds (Theorem 31);
//   - APSPWeighted: (2+ε, (1+ε)W)-approximate weighted APSP (Theorem 28)
//     and APSPWeighted3, the simpler (3+ε)-approximation (§6.1);
//   - MSSP: (1+ε)-approximate multi-source shortest paths, polylogarithmic
//     for up to ~√n sources (Theorem 3);
//   - SSSP: exact single-source shortest paths in O~(n^{1/6}) rounds
//     (Theorem 33);
//   - Diameter: a near-3/2 diameter approximation (§7.2);
//   - KNearest: exact distances and routing witnesses to the k closest
//     nodes (Theorem 18), and SourceDetection (Theorem 19).
//
// Every result carries the Stats of the simulated run - rounds (split into
// simulated and primitive-charged), messages and words - so the paper's
// round bounds can be measured directly; see DESIGN.md and EXPERIMENTS.md.
// The simulator executes collectives on a multi-core worker pool
// (Options.Workers, DESIGN.md §5); worker count never changes results or
// round statistics, only wall-clock time.
//
// # Quick start
//
//	g := ccsp.NewGraph(64)
//	g.MustAddEdge(0, 1, 1) // ... build an undirected weighted graph
//	res, err := ccsp.APSPWeighted(context.Background(), g, ccsp.Options{Epsilon: 0.5})
//	if err != nil { ... }
//	fmt.Println(res.Distance(0, 1), res.Stats.TotalRounds)
//
// # Cancellation and errors
//
// Every entry point takes a leading context.Context, checked at every
// simulator barrier: canceling it (or letting its deadline expire) aborts
// the run cleanly - including a preprocessing build in flight - and the
// returned error wraps ErrCanceled plus the context's own sentinel.
// Errors are typed (ErrCanceled, ErrRoundLimit, ErrInvalidSource,
// ErrInvalidOption) and matched with errors.Is; DESIGN.md §10 documents
// the model.
//
//	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
//	defer cancel()
//	res, err := ccsp.MSSP(ctx, g, sources, ccsp.Options{})
//	if errors.Is(err, ccsp.ErrCanceled) { ... } // deadline hit mid-run
//
// # Serving many queries
//
// The pipeline is two-phase - build a (β, ε)-hopset once (§4), answer
// queries with cheap β-hop computations - and Engine exposes that split:
// NewEngine preprocesses the graph once, then MSSP/SSSP/APSP/Diameter
// queries run at query-only cost, safe for concurrent use. Engine
// queries return byte-identical results to the one-shot functions, and
// PreprocessStats + per-query Stats sum to exactly the one-shot totals
// (the one-shot functions are thin wrappers over an Engine); DESIGN.md
// §8 documents the contract.
//
//	eng, err := ccsp.NewEngine(ctx, g, ccsp.Options{Epsilon: 0.5})
//	if err != nil { ... }
//	res, err := eng.MSSP(ctx, []int{3, 7, 11}) // no hopset rebuild
//
// # The query plane
//
// Engine.Query answers one typed api.Request (the tagged union the
// serving daemon and the client package speak), and Engine.Batch answers
// many at once: duplicate requests dedup onto one run, distinct requests
// run concurrently, shared preprocessing artifacts build once, and
// failures stay per-request. The api package defines the wire schema,
// the client package the HTTP client mirroring Engine's method set;
// DESIGN.md §11 documents the plane.
//
//	resps, err := eng.Batch(ctx, []api.Request{
//		{Kind: api.KindMSSP, MSSP: &api.MSSPParams{Sources: []int{3, 7}}},
//		{Kind: api.KindDiameter},
//	})
package ccsp
