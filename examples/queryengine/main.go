// Query engine: serve many distance queries from one preprocessing pass.
// The paper's pipeline is two-phase - build a (β, ε)-hopset once (§4),
// answer queries with cheap β-hop computations (Theorems 3/28) - and
// ccsp.Engine exposes exactly that split. This example preprocesses a
// 64-node network once, then answers a stream of multi-source, diameter
// and all-pairs queries, printing the amortization ledger: the one-time
// preprocessing rounds vs the per-query rounds, and what the same stream
// would have cost with one-shot calls.
package main

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"os/signal"

	"github.com/congestedclique/ccsp"
)

func main() {
	// Ctrl-C cancels the context; every ccsp call below aborts cleanly
	// at its next simulator barrier instead of running to completion.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if err := run(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "queryengine:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context) error {
	// A 64-node weighted network: a random connected core with a few
	// heavy long-haul links.
	const n = 64
	rng := rand.New(rand.NewSource(7))
	g := ccsp.NewGraph(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(v, rng.Intn(v), rng.Int63n(9)+1)
	}
	for e := 0; e < 2*n; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.MustAddEdge(u, v, rng.Int63n(9)+1)
		}
	}

	// Preprocess once. NewEngine runs the hopset construction - the
	// expensive phase every one-shot call used to repeat - and caches the
	// artifact for all queries that follow.
	eng, err := ccsp.NewEngine(ctx, g, ccsp.Options{Epsilon: 0.5})
	if err != nil {
		return err
	}
	pre := eng.PreprocessStats()
	fmt.Printf("preprocessing: %d rounds, %d artifact(s)\n", pre.Total.TotalRounds, len(pre.Builds))
	for _, b := range pre.Builds {
		fmt.Printf("  %-14s ε'=%.2g β=%d |H|=%d edges: %d rounds\n",
			b.Kind, b.Eps, b.Beta, b.Edges, b.Stats.TotalRounds)
	}

	// A query stream: 6 MSSP queries (think: rotating landmark sets), a
	// diameter probe, and one all-pairs refresh.
	queryRounds := 0
	for i := 0; i < 6; i++ {
		sources := []int{(7*i + 1) % n, (13*i + 5) % n}
		res, err := eng.MSSP(ctx, sources)
		if err != nil {
			return err
		}
		d, _ := res.Distance((i*11)%n, res.Sources[0])
		fmt.Printf("mssp %v: d(%d,%d)=%d in %d rounds\n",
			res.Sources, (i*11)%n, res.Sources[0], d, res.Stats.TotalRounds)
		queryRounds += res.Stats.TotalRounds
	}
	diam, err := eng.Diameter(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("diameter ≈ %d in %d rounds\n", diam.Estimate, diam.Stats.TotalRounds)
	queryRounds += diam.Stats.TotalRounds
	apsp, err := eng.APSPWeighted(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("apsp refresh: d(0,%d)=%d in %d rounds\n", n-1, apsp.Distance(0, n-1), apsp.Stats.TotalRounds)
	queryRounds += apsp.Stats.TotalRounds

	// The ledger. The APSP query lazily added its ε/2 artifact, so re-read
	// the preprocessing stats for the final total.
	pre = eng.PreprocessStats()
	fmt.Printf("\ntotal: %d preprocessing + %d query rounds = %d\n",
		pre.Total.TotalRounds, queryRounds, pre.Total.TotalRounds+queryRounds)

	// What the same stream costs without reuse: every one-shot call
	// rebuilds its hopset (preprocess + query merged into its Stats).
	oneShot := 0
	for i := 0; i < 6; i++ {
		sources := []int{(7*i + 1) % n, (13*i + 5) % n}
		res, err := ccsp.MSSP(ctx, g, sources, ccsp.Options{Epsilon: 0.5})
		if err != nil {
			return err
		}
		oneShot += res.Stats.TotalRounds
	}
	d1, err := ccsp.Diameter(ctx, g, ccsp.Options{Epsilon: 0.5})
	if err != nil {
		return err
	}
	a1, err := ccsp.APSPWeighted(ctx, g, ccsp.Options{Epsilon: 0.5})
	if err != nil {
		return err
	}
	oneShot += d1.Stats.TotalRounds + a1.Stats.TotalRounds
	engTotal := pre.Total.TotalRounds + queryRounds
	fmt.Printf("one-shot equivalent: %d rounds → engine saves %d (%.1f×)\n",
		oneShot, oneShot-engTotal, float64(oneShot)/float64(engTotal))
	return nil
}
