// Query plane: the typed request/response API end to end. One
// api.Request schema serves three receivers - the in-process Engine
// (Query/Batch), the HTTP daemon (POST /v1/query, /v1/batch), and the
// client package - so code written against a local engine ports to a
// remote daemon by swapping the receiver. This example builds a small
// network, answers a mixed batch locally through Engine.Batch (one
// preprocessing for the whole batch, the paper's amortization claim),
// then serves the same engine over HTTP and re-answers the batch through
// client.Batch, verifying the responses agree position by position.
package main

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"
	"os/signal"
	"reflect"

	"github.com/congestedclique/ccsp"
	"github.com/congestedclique/ccsp/api"
	"github.com/congestedclique/ccsp/client"
	"github.com/congestedclique/ccsp/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "queryplane:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context) error {
	// A 48-node weighted network.
	const n = 48
	rng := rand.New(rand.NewSource(11))
	g := ccsp.NewGraph(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(v, rng.Intn(v), rng.Int63n(9)+1)
	}
	for e := 0; e < 2*n; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.MustAddEdge(u, v, rng.Int63n(9)+1)
		}
	}

	eng, err := ccsp.NewEngine(ctx, g, ccsp.Options{Epsilon: 0.5})
	if err != nil {
		return err
	}

	// A mixed batch: every request kind, including one deliberate
	// failure to show per-request error isolation.
	batch := []api.Request{
		{Kind: api.KindMSSP, MSSP: &api.MSSPParams{Sources: []int{0, 7, 19}}},
		{Kind: api.KindSSSP, SSSP: &api.SSSPParams{Source: 3}},
		{Kind: api.KindDistance, Distance: &api.DistanceParams{From: 0, To: 41}},
		{Kind: api.KindDiameter},
		{Kind: api.KindKNearest, KNearest: &api.KNearestParams{K: 4}},
		{Kind: api.KindSourceDetection, SourceDetection: &api.SourceDetectionParams{Sources: []int{0, 19}, D: 4, K: 2}},
		{Kind: api.KindAPSP, APSP: &api.APSPParams{Variant: api.APSPWeighted3}},
		{Kind: api.KindSSSP, SSSP: &api.SSSPParams{Source: 9999}}, // fails alone
	}

	// Local: Engine.Batch. Distinct requests run concurrently, the
	// hopset artifacts are charged once in PreprocessStats.
	local, err := eng.Batch(ctx, batch)
	if err != nil {
		return err
	}
	fmt.Println("local Engine.Batch:")
	printLedger(local)
	pre := eng.PreprocessStats()
	fmt.Printf("  preprocessing charged once: %d rounds over %d build(s)\n\n",
		pre.Total.TotalRounds, len(pre.Builds))

	// Remote: the same engine behind the HTTP plane, the same batch
	// through the client package.
	srv, err := server.New(server.Config{Engine: eng})
	if err != nil {
		return err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := client.New(ts.URL)
	if h, err := c.Health(ctx); err == nil {
		fmt.Printf("remote daemon at %s: %s, n=%d m=%d\n", ts.URL, h.Status, h.Nodes, h.Edges)
	}
	remote, err := c.Batch(ctx, batch)
	if err != nil {
		return err
	}
	fmt.Println("remote client.Batch:")
	printLedger(remote)

	// The two planes agree position by position (the cache flag may
	// differ: the daemon caches, the engine does not).
	for i := range batch {
		l, r := local[i], remote[i]
		r.Cached = l.Cached
		if !reflect.DeepEqual(l, r) {
			return fmt.Errorf("position %d: local and remote responses differ", i)
		}
	}
	fmt.Println("local and remote answers identical for all positions")
	return nil
}

func printLedger(resps []api.Response) {
	for i, r := range resps {
		if r.Error != nil {
			fmt.Printf("  [%d] %-17s error %s: %s\n", i, r.Kind, r.Error.Code, r.Error.Message)
			continue
		}
		fmt.Printf("  [%d] %-17s %4d rounds, %7d words", i, r.Kind, r.Stats.TotalRounds, r.Stats.Words)
		switch r.Kind {
		case api.KindDistance:
			fmt.Printf("  d(%d,%d)=%d", r.Distance.From, r.Distance.To, r.Distance.Distance)
		case api.KindDiameter:
			fmt.Printf("  estimate=%d", r.Diameter.Estimate)
		case api.KindAPSP:
			fmt.Printf("  variant=%s", r.APSP.Variant)
		}
		fmt.Println()
	}
}
