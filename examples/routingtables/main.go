// Routingtables: compact routing state from the k-nearest tool
// (Theorem 18) with the witness recovery of §3.1 - every node learns its k
// closest nodes with exact distances and the first hop of a shortest path,
// i.e. a local routing table, in O~(1) rounds for k up to ~n^{2/3}.
package main

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"os/signal"

	"github.com/congestedclique/ccsp"
)

func main() {
	// Ctrl-C cancels the context; every ccsp call below aborts cleanly
	// at its next simulator barrier instead of running to completion.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if err := run(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "routingtables:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context) error {
	// A weighted ring-with-chords network, small enough to print.
	const n = 32
	rng := rand.New(rand.NewSource(5))
	g := ccsp.NewGraph(n)
	for v := 0; v < n; v++ {
		g.MustAddEdge(v, (v+1)%n, int64(rng.Intn(5)+1))
	}
	for c := 0; c < n/4; c++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.MustAddEdge(u, v, int64(rng.Intn(20)+5))
		}
	}

	const k = 6
	res, err := ccsp.KNearest(ctx, g, k, ccsp.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("%d-nearest routing tables on n=%d, m=%d\n", k, g.N(), g.M())
	fmt.Printf("cost: %v\n\n", res.Stats)

	for _, v := range []int{0, 7, 19} {
		fmt.Printf("node %d routes:\n", v)
		for _, e := range res.Neighbors[v] {
			if e.Node == v {
				continue
			}
			fmt.Printf("  -> %2d  dist=%2d hops=%d  first hop: %d\n", e.Node, e.Dist, e.Hops, e.FirstHop)
		}
	}

	// Follow a route end to end: repeatedly forward to the first hop.
	from, to := 0, res.Neighbors[0][k-1].Node
	fmt.Printf("\nforwarding a packet %d -> %d:", from, to)
	cur := from
	for cur != to {
		next := -1
		for _, e := range res.Neighbors[cur] {
			if e.Node == to {
				next = e.FirstHop
			}
		}
		if next < 0 {
			fmt.Printf(" (destination beyond node %d's table)\n", cur)
			return nil
		}
		fmt.Printf(" %d", next)
		cur = next
	}
	fmt.Println(" - delivered.")
	return nil
}
