// Quickstart: build a small unweighted network, run the paper's
// (2+ε)-approximate APSP (Theorem 31), and compare the estimates and round
// complexity against what the model promises.
package main

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"os/signal"

	"github.com/congestedclique/ccsp"
)

func main() {
	// Ctrl-C cancels the context; every ccsp call below aborts cleanly
	// at its next simulator barrier instead of running to completion.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if err := run(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context) error {
	// A 64-node unweighted "collaboration network": a sparse random core
	// plus a popular hub - exactly the high/low-degree mix the §6.3
	// algorithm splits on.
	const n = 64
	rng := rand.New(rand.NewSource(1))
	g := ccsp.NewGraph(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(v, rng.Intn(v), 1)
	}
	for e := 0; e < n/2; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.MustAddEdge(u, v, 1)
		}
	}
	for v := 1; v < n; v += 4 {
		g.MustAddEdge(0, v, 1) // the hub
	}

	eps := 0.5
	res, err := ccsp.APSPUnweighted(ctx, g, ccsp.Options{Epsilon: eps})
	if err != nil {
		return err
	}

	fmt.Printf("(2+ε)-approximate APSP on n=%d, m=%d, ε=%.2f\n", g.N(), g.M(), eps)
	fmt.Printf("cost: %v\n\n", res.Stats)

	// Spot-check a few pairs against exact BFS distances.
	fmt.Println("pair      exact  estimate")
	for _, pair := range [][2]int{{1, 2}, {3, 60}, {17, 42}, {5, 33}} {
		exact := bfs(g, pair[0])[pair[1]]
		fmt.Printf("(%2d,%2d)   %5d  %8d\n", pair[0], pair[1], exact, res.Distance(pair[0], pair[1]))
	}

	// The guarantee is worst-case: verify it over all pairs.
	worst := 1.0
	for u := 0; u < n; u++ {
		exact := bfs(g, u)
		for v := 0; v < n; v++ {
			if exact[v] <= 0 {
				continue
			}
			if r := float64(res.Distance(u, v)) / float64(exact[v]); r > worst {
				worst = r
			}
		}
	}
	fmt.Printf("\nworst-case measured stretch: %.3f (guarantee: %.2f)\n", worst, 2+eps)
	return nil
}

// bfs returns exact hop distances (the ground truth for unweighted graphs).
func bfs(g *ccsp.Graph, src int) []int64 {
	dist := make([]int64, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		g.Neighbors(v, func(u int, _ int64) {
			if dist[u] < 0 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		})
	}
	return dist
}
