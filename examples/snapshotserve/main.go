// Snapshot store: preprocess once *ever*, not once per process. A warm
// ccsp.Engine is a pile of (β, ε)-hopset artifacts - exactly the reusable
// product of the paper's preprocessing phase (§4) - and Engine.Save
// persists it as a versioned, checksummed snapshot that LoadEngine
// restores without a single simulator round. This example preprocesses a
// 48-node network, saves the engine, restores it (simulating a server
// restart), verifies the restored engine answers byte-identically, and
// starts an in-process HTTP server (the same handlers cmd/ccspd serves)
// to answer a distance query over the wire.
package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"reflect"
	"time"

	"github.com/congestedclique/ccsp"
	"github.com/congestedclique/ccsp/internal/server"
)

func main() {
	// Ctrl-C cancels the context; every ccsp call below aborts cleanly
	// at its next simulator barrier instead of running to completion.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if err := run(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "snapshotserve:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context) error {
	// A 48-node weighted network.
	const n = 48
	rng := rand.New(rand.NewSource(11))
	g := ccsp.NewGraph(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(v, rng.Intn(v), rng.Int63n(9)+1)
	}
	for e := 0; e < 2*n; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.MustAddEdge(u, v, rng.Int63n(9)+1)
		}
	}

	// Cold start: preprocess and save the warm engine.
	coldStart := time.Now()
	eng, err := ccsp.NewEngine(ctx, g, ccsp.Options{Epsilon: 0.5})
	if err != nil {
		return err
	}
	coldElapsed := time.Since(coldStart)

	var snap bytes.Buffer
	if err := eng.Save(&snap); err != nil {
		return err
	}
	fmt.Printf("cold start: %d preprocessing rounds in %v; snapshot is %d bytes\n",
		eng.PreprocessStats().Total.TotalRounds, coldElapsed.Round(time.Millisecond), snap.Len())

	// Restart: restore the engine from the snapshot instead of
	// rebuilding. This is what `ccspd -load` does at boot.
	warmStart := time.Now()
	restored, err := ccsp.LoadEngine(ctx, bytes.NewReader(snap.Bytes()))
	if err != nil {
		return err
	}
	fmt.Printf("warm start: restored in %v (0 simulator rounds)\n",
		time.Since(warmStart).Round(time.Microsecond))

	// The restored engine is indistinguishable: same distances, same
	// round counts.
	sources := []int{3, 17}
	want, err := eng.MSSP(ctx, sources)
	if err != nil {
		return err
	}
	got, err := restored.MSSP(ctx, sources)
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(got.Dist, want.Dist) || got.Stats.TotalRounds != want.Stats.TotalRounds {
		return fmt.Errorf("restored engine diverged (this cannot happen)")
	}
	fmt.Printf("restored engine matches: MSSP%v in %d rounds, byte-identical distances\n",
		sources, got.Stats.TotalRounds)

	// Serve it. cmd/ccspd wires the same handlers to a real listener.
	srv, err := server.New(server.Config{Engine: restored, Timeout: 10 * time.Second})
	if err != nil {
		return err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/distance?from=3&to=40")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	fmt.Printf("GET /v1/distance?from=3&to=40 ->\n%s", body)
	return nil
}
