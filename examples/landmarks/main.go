// Landmarks: a distance-sketch service on a power-law network. The paper's
// headline MSSP result (Theorem 3) computes (1+ε)-approximate distances
// from every node to O~(√n) sources in polylogarithmic rounds - here the
// sources are "landmark" nodes, and pairwise distances are then estimated
// by triangulation through the best landmark, a classic landmark-routing
// scheme running entirely on the Congested Clique.
package main

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"os"
	"os/signal"
	"sort"

	"github.com/congestedclique/ccsp"
)

func main() {
	// Ctrl-C cancels the context; every ccsp call below aborts cleanly
	// at its next simulator barrier instead of running to completion.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if err := run(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "landmarks:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context) error {
	// A preferential-attachment network: a few high-degree hubs, many
	// low-degree leaves - the overlay-network workload the congested
	// clique models (§1).
	const n = 81
	rng := rand.New(rand.NewSource(7))
	g := ccsp.NewGraph(n)
	pool := []int{0}
	for v := 1; v < n; v++ {
		u := pool[rng.Intn(len(pool))]
		g.MustAddEdge(v, u, int64(rng.Intn(9)+1))
		pool = append(pool, v, u)
	}

	// Pick the √n highest-degree nodes as landmarks.
	type nd struct{ v, deg int }
	nodes := make([]nd, n)
	for v := 0; v < n; v++ {
		nodes[v] = nd{v, g.Degree(v)}
	}
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].deg != nodes[j].deg {
			return nodes[i].deg > nodes[j].deg
		}
		return nodes[i].v < nodes[j].v
	})
	numLandmarks := int(math.Sqrt(n))
	landmarks := make([]int, numLandmarks)
	for i := range landmarks {
		landmarks[i] = nodes[i].v
	}
	sort.Ints(landmarks)

	eps := 0.25
	res, err := ccsp.MSSP(ctx, g, landmarks, ccsp.Options{Epsilon: eps})
	if err != nil {
		return err
	}
	fmt.Printf("MSSP from %d landmarks on n=%d, m=%d, ε=%.2f\n", numLandmarks, g.N(), g.M(), eps)
	fmt.Printf("cost: %v\n\n", res.Stats)

	// Triangulate some pairs: d̃(u,v) = min over landmarks l of
	// d̃(u,l) + d̃(l,v); an upper bound with stretch depending on how well
	// the landmarks cover the graph.
	fmt.Println("pair      via-landmark estimate")
	for _, pair := range [][2]int{{3, 77}, {10, 64}, {25, 50}} {
		best := ccsp.Unreachable
		bestL := -1
		for i, l := range res.Sources {
			du := res.Dist[pair[0]][i]
			dv := res.Dist[pair[1]][i]
			if du < ccsp.Unreachable && dv < ccsp.Unreachable && du+dv < best {
				best, bestL = du+dv, l
			}
		}
		fmt.Printf("(%2d,%2d)   %d (through landmark %d)\n", pair[0], pair[1], best, bestL)
	}

	// The Theorem 3 guarantee applies to the node-to-landmark distances
	// themselves; demonstrate it on one landmark.
	l := landmarks[0]
	fmt.Printf("\nnode -> landmark %d distances (first 10 nodes):\n", l)
	for v := 0; v < 10; v++ {
		d, err := res.Distance(v, l)
		if err != nil {
			return err
		}
		fmt.Printf("  d̃(%d, %d) = %d\n", v, l, d)
	}
	return nil
}
