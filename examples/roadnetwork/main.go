// Roadnetwork: exact single-source routes and a diameter estimate on a
// weighted grid - the high-shortest-path-diameter regime where the paper's
// shortcut-based exact SSSP (Theorem 33) beats plain Bellman-Ford, whose
// round count is the grid's hop diameter.
package main

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"os/signal"

	"github.com/congestedclique/ccsp"
)

func main() {
	// Ctrl-C cancels the context; every ccsp call below aborts cleanly
	// at its next simulator barrier instead of running to completion.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if err := run(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "roadnetwork:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context) error {
	// A 10x10 grid with travel-time weights: SPD is ~18 hops, so plain
	// Bellman-Ford needs ~18 broadcast rounds while the n^{5/6}-shortcut
	// construction collapses it to a handful of iterations.
	const rows, cols = 10, 10
	n := rows * cols
	rng := rand.New(rand.NewSource(3))
	g := ccsp.NewGraph(n)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.MustAddEdge(id(r, c), id(r, c+1), int64(rng.Intn(9)+1))
			}
			if r+1 < rows {
				g.MustAddEdge(id(r, c), id(r+1, c), int64(rng.Intn(9)+1))
			}
		}
	}

	depot := id(0, 0)
	res, err := ccsp.SSSP(ctx, g, depot, ccsp.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("exact SSSP from depot %d on a %dx%d grid\n", depot, rows, cols)
	fmt.Printf("cost: %v (Bellman-Ford iterations on the shortcut graph: %d)\n\n", res.Stats, res.Iterations)

	dest := id(rows-1, cols-1)
	fmt.Printf("distance depot -> opposite corner: %d\n", res.Dist[dest])
	fmt.Printf("route: %v\n\n", res.PathTo(g, dest))

	diam, err := ccsp.Diameter(ctx, g, ccsp.Options{Epsilon: 0.5})
	if err != nil {
		return err
	}
	fmt.Printf("diameter estimate (≈3/2-approx, §7.2): %d\n", diam.Estimate)
	fmt.Printf("cost: %v\n", diam.Stats)
	return nil
}
