package ccsp

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"github.com/congestedclique/ccsp/internal/dynamic"
)

// EdgeUpdate is one edge mutation for a DynamicEngine. W >= 0 sets the
// weight of the undirected edge {U, V}, inserting it if absent and
// collapsing any parallel edges to the single new weight; W < 0 deletes
// the edge (a no-op if absent).
type EdgeUpdate struct {
	U int   `json:"u"`
	V int   `json:"v"`
	W int64 `json:"w"`
}

// DynamicEngine serves a mutating graph from an immutable Engine behind
// an atomic pointer (DESIGN.md §16). Queries read the current engine
// with a single atomic load - they never block on writers and never see
// a half-built engine. ApplyUpdates stages mutations into a pending
// generation and kicks a background rebuild: a full preprocess of the
// mutated graph under the wrapped engine's own Options (direct mode
// rebuilds in milliseconds at serving scale, E17/E20). When the rebuild
// completes, the fresh engine - stamped with the generation's epoch -
// is swapped in atomically. Updates arriving while a rebuild is in
// flight coalesce into the next generation; there is never more than
// one rebuild running.
//
// Epochs increase monotonically and are never reused: a generation
// whose rebuild fails burns its number, keeps the previous engine
// serving, and reports the error to its Wait-ers. Because each Engine
// carries its epoch, an (engine, epoch) pair is read atomically -
// cache keys derived via api.Request.CacheKeyAt(eng.Epoch()) can never
// mix answers across generations.
type DynamicEngine struct {
	cur   atomic.Pointer[Engine]
	coord *dynamic.Coordinator
	opts  Options
}

// NewDynamicEngine wraps an already built engine. The engine's current
// epoch (0 for a fresh NewEngine, the persisted epoch for a loaded
// snapshot) seeds the generation sequence; rebuilds inherit the
// engine's Options, including its execution mode.
func NewDynamicEngine(eng *Engine) *DynamicEngine {
	d := &DynamicEngine{opts: eng.Options()}
	d.cur.Store(eng)
	d.coord = dynamic.New(eng.Epoch(), d.rebuild)
	return d
}

// Engine returns the currently serving engine. The returned engine is
// immutable and remains valid (and consistent with its own Epoch)
// after later swaps; take it once per request to get a single-epoch
// view.
func (d *DynamicEngine) Engine() *Engine { return d.cur.Load() }

// Epoch returns the epoch of the currently serving engine.
func (d *DynamicEngine) Epoch() uint64 { return d.cur.Load().Epoch() }

// Pending reports how many staged updates are not yet visible.
func (d *DynamicEngine) Pending() int { return d.coord.Pending() }

// ApplyUpdates validates and stages ups, starts (or joins) the
// background rebuild, and returns the epoch at which the updates will
// become visible - without waiting for the rebuild. Use Wait (or the
// combined Update) to block until that epoch serves. If the rebuild
// fails, the updates are dropped, the current engine keeps serving,
// and Wait on the returned epoch reports the failure.
func (d *DynamicEngine) ApplyUpdates(ctx context.Context, ups []EdgeUpdate) (uint64, error) {
	if err := ctx.Err(); err != nil {
		return 0, ctxErr(ctx)
	}
	conv := make([]dynamic.Update, len(ups))
	for i, u := range ups {
		conv[i] = dynamic.Update{U: u.U, V: u.V, W: u.W}
	}
	if err := dynamic.Validate(d.cur.Load().gr.N(), conv); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrInvalidOption, err)
	}
	return d.coord.Stage(conv)
}

// Wait blocks until the given epoch is serving (nil), its rebuild
// failed (that error), the DynamicEngine is closed, or ctx fires.
func (d *DynamicEngine) Wait(ctx context.Context, epoch uint64) error {
	return d.coord.Wait(ctx, epoch)
}

// Update is ApplyUpdates followed by Wait: it returns once queries
// against Engine() reflect ups, with the epoch that serves them.
func (d *DynamicEngine) Update(ctx context.Context, ups []EdgeUpdate) (uint64, error) {
	epoch, err := d.ApplyUpdates(ctx, ups)
	if err != nil {
		return 0, err
	}
	if err := d.Wait(ctx, epoch); err != nil {
		return 0, err
	}
	return epoch, nil
}

// Close stops the background rebuilder: further ApplyUpdates fail, an
// in-flight rebuild is canceled (unwinding at its next barrier), and
// waiters are released with errors. The current engine remains valid
// for queries.
func (d *DynamicEngine) Close() { d.coord.Close() }

// rebuild is the coordinator's BuildFunc: patch the serving graph,
// preprocess it from scratch under the same Options, stamp the epoch,
// swap. Building from the *serving* engine's graph is correct because
// generations are serialized: the serving graph always reflects every
// previously published generation.
func (d *DynamicEngine) rebuild(ctx context.Context, epoch uint64, ups []dynamic.Update) error {
	start := time.Now()
	base := d.cur.Load()
	g2, err := dynamic.Apply(base.gr.g, ups)
	if err != nil {
		metRebuildErrors.Inc()
		return fmt.Errorf("%w: %v", ErrInvalidOption, err)
	}
	eng2, err := NewEngine(ctx, &Graph{g: g2}, d.opts)
	if err != nil {
		metRebuildErrors.Inc()
		return err
	}
	eng2.epoch = epoch
	d.cur.Store(eng2)
	metRebuilds.Inc()
	metRebuildSeconds.ObserveDuration(time.Since(start))
	return nil
}
