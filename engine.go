package ccsp

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/congestedclique/ccsp/internal/apsp"
	"github.com/congestedclique/ccsp/internal/cc"
	"github.com/congestedclique/ccsp/internal/diameter"
	"github.com/congestedclique/ccsp/internal/disttools"
	"github.com/congestedclique/ccsp/internal/hitting"
	"github.com/congestedclique/ccsp/internal/hopset"
	"github.com/congestedclique/ccsp/internal/matrix"
	"github.com/congestedclique/ccsp/internal/mssp"
	"github.com/congestedclique/ccsp/internal/semiring"
	"github.com/congestedclique/ccsp/internal/sssp"
)

// Engine is the preprocess-once / query-many entry point. The paper's
// distance pipeline is explicitly two-phase: build a (β, ε)-hopset once
// (§4, Theorem 25), then answer queries with cheap β-hop-limited
// computations (Theorems 3/28/31). An Engine materializes that split:
// NewEngine runs the preprocessing once and caches the resulting
// host-side artifacts (Preprocessed); every query method then launches a
// query-only simulator run seeded with the cached artifact, paying zero
// hopset-construction rounds.
//
// Determinism contract: an artifact depends only on (graph, hopset
// params), and every collective is deterministic, so Engine queries
// return byte-identical results to the one-shot functions, and the
// engine's preprocessing rounds plus a query's rounds equal the one-shot
// rounds exactly (round accounting is additive across runs). The
// one-shot functions are in fact thin wrappers over a lazy Engine.
//
// Concurrency: the cached artifacts are read-only and each query runs in
// its own simulator instance, so an Engine is safe for concurrent
// queries from multiple goroutines. The engine deep-copies the input
// graph, so mutating the caller's *Graph after NewEngine (via AddEdge)
// cannot corrupt cached artifacts; such mutations are simply invisible
// to the engine. To serve a mutating graph, wrap the engine in a
// DynamicEngine.
//
// Cancellation: every method takes a leading context.Context and unwinds
// at the next simulator barrier when it fires, returning an error that
// wraps ErrCanceled plus the context's own sentinel. Lazy artifact builds
// follow the cache-poisoning rule of DESIGN.md §10: the build runs under
// the context of the query that initiated it, concurrent waiters that
// cancel only abandon their wait, and a build that fails (for any reason,
// including cancellation) is not cached - the next query retries it.
//
// Cost reporting: each query's Stats covers only that query's run;
// PreprocessStats reports the artifact constructions separately. MaxRounds
// (if set) bounds each run individually rather than the one-shot total.
type Engine struct {
	gr   *Graph
	opts Options
	pre  *Preprocessed
	// epoch is the graph version this engine was built at: 0 for a fresh
	// NewEngine, assigned by DynamicEngine rebuilds, persisted by
	// snapshots. Written only before the engine is shared (immutable
	// afterwards, like everything else here).
	epoch uint64
	// direct caches the host-side weight matrix for ExecDirect runs
	// (direct.go); unused in simulated mode.
	direct directState
}

// Preprocessed is the cache of reusable preprocessing artifacts - per-node
// hopset rows, hitting-set membership and PV/DPV pivots, all host-side
// data - keyed by hopset parameterization. Artifacts are built lazily on
// first need (NewEngine builds the base one eagerly) and are immutable
// afterwards. Only completed builds enter arts; an in-flight build is a
// buildCall that concurrent queries wait on (cancelably), and a failed or
// canceled build vanishes without poisoning the cache.
type Preprocessed struct {
	mu       sync.Mutex
	arts     map[artifactKey]*artifactEntry // completed, immutable entries
	inflight map[artifactKey]*buildCall
	order    []artifactKey // completion order, for PreprocessStats
}

// buildCall is one in-flight artifact build. The builder closes done after
// publishing ent/err; waiters select on done against their own context, so
// a waiter canceling never affects the build (the builder's context
// governs it - the DESIGN.md §10 cache-poisoning rule).
type buildCall struct {
	done chan struct{}
	ent  *artifactEntry
	err  error
}

// artVariant selects the graph the hopset is built on.
type artVariant uint8

const (
	// artFull builds on G itself.
	artFull artVariant = iota
	// artLowDegree builds on the §6.3 low-degree subgraph G' (degree <
	// ⌈√n⌉), and additionally captures the degree broadcast the subgraph
	// is derived from.
	artLowDegree
)

func (v artVariant) String() string {
	if v == artLowDegree {
		return "hopset-lowdeg"
	}
	return "hopset"
}

type artifactKey struct {
	variant artVariant
	params  hopset.Params
}

type artifactEntry struct {
	art   *hopset.Artifact
	degs  []int64 // artLowDegree only: broadcast |N(v)| vector, read-only
	stats Stats

	// Direct-mode query matrices derived from the artifact (DESIGN.md
	// §13), built once on first direct query and immutable afterwards:
	// base is the weight matrix the artifact was built on (G itself, or
	// the low-degree subgraph G' for artLowDegree) and gh is base merged
	// with the hopset rows (G ∪ H). Unused in simulated mode.
	ghOnce sync.Once
	base   *matrix.Mat[semiring.WH]
	gh     *matrix.Mat[semiring.WH]
}

// NewEngine validates the input and runs the preprocessing: one simulator
// run that constructs the base hopset artifact (at the Options' ε - the
// parameterization shared by MSSP and Diameter queries). The APSP queries
// need a hopset at ε/2; that artifact (and, for the unweighted algorithm,
// a second one on the low-degree subgraph) is built lazily on the first
// APSP call and cached like the rest.
//
// Canceling ctx aborts the preprocessing run at its next barrier and
// NewEngine returns an error wrapping ErrCanceled; no engine is returned.
func NewEngine(ctx context.Context, gr *Graph, opts Options) (*Engine, error) {
	e, err := newEngine(gr, opts)
	if err != nil {
		return nil, err
	}
	if _, err := e.artifact(ctx, e.baseKey()); err != nil {
		return nil, err
	}
	return e, nil
}

// newEngine is NewEngine without the eager preprocessing run; the
// one-shot wrappers use it so that they only ever pay for the artifacts
// their single query needs.
func newEngine(gr *Graph, opts Options) (*Engine, error) {
	opts, err := prepare(gr, opts)
	if err != nil {
		return nil, err
	}
	// Defensive copy: artifacts are memoized against the graph as it was
	// at construction, so a caller appending edges to its *Graph later
	// must not be able to change what cached artifacts (or lazy direct
	// matrices) are derived from.
	gr = &Graph{g: gr.g.Clone()}
	return &Engine{
		gr:   gr,
		opts: opts,
		pre: &Preprocessed{
			arts:     make(map[artifactKey]*artifactEntry),
			inflight: make(map[artifactKey]*buildCall),
		},
	}, nil
}

// baseKey is the hopset parameterization of direct (1+ε) queries: MSSP
// (Theorem 3) and both MSSP stages of Diameter (§7.2).
func (e *Engine) baseKey() artifactKey {
	return artifactKey{artFull, e.opts.hopsetParams()}
}

// apspKey is the ε/2 parameterization all §6 APSP algorithms use for
// their inner MSSP (Lemmas 27/30).
func (e *Engine) apspKey() artifactKey {
	return artifactKey{artFull, apsp.HopsetParams(e.opts.hopsetParams(), e.opts.Epsilon)}
}

// apspLowKey is the ε/2 hopset on the low-degree subgraph G' used by the
// second phase of the unweighted APSP (§6.3).
func (e *Engine) apspLowKey() artifactKey {
	return artifactKey{artLowDegree, apsp.HopsetParams(e.opts.hopsetParams(), e.opts.Epsilon)}
}

// artifact returns the cached artifact for key, building it in a
// preprocessing run on first use. Concurrent callers of the same key
// block until the single build completes - cancelably: a waiter whose ctx
// fires abandons the wait (and gets ErrCanceled) while the build, governed
// by the initiating query's ctx, keeps running for everyone else. Failed
// builds - including canceled ones - are not cached: a cancellation can
// never poison the cache. And if the *initiating* query is canceled
// mid-build, waiters whose own contexts are live take over and rebuild
// instead of inheriting the initiator's cancellation (DESIGN.md §10).
func (e *Engine) artifact(ctx context.Context, key artifactKey) (*artifactEntry, error) {
	for {
		e.pre.mu.Lock()
		if ent, ok := e.pre.arts[key]; ok {
			e.pre.mu.Unlock()
			metArtifactHits.Inc()
			return ent, nil
		}
		call, inflight := e.pre.inflight[key]
		if !inflight {
			call = &buildCall{done: make(chan struct{})}
			e.pre.inflight[key] = call
			e.pre.mu.Unlock()
			e.build(ctx, key, call)
			return call.ent, call.err
		}
		e.pre.mu.Unlock()
		select {
		case <-call.done:
			if call.err != nil && errors.Is(call.err, ErrCanceled) && ctx.Err() == nil {
				continue // the initiator was canceled, we were not: rebuild
			}
			return call.ent, call.err
		case <-ctx.Done():
			return nil, fmt.Errorf("ccsp: preprocess (%s): %w", key.variant, ctxErr(ctx))
		}
	}
}

// build runs buildArtifact for the registered in-flight call and always -
// even if buildArtifact panics - unregisters the call, publishes the
// outcome, and closes done. Without the deferred cleanup a panic would
// leave waiters blocked forever on a channel nobody will close and the
// key permanently unbuildable.
func (e *Engine) build(ctx context.Context, key artifactKey, call *buildCall) {
	// Pessimistic default, overwritten on a normal return: a panicking
	// build hands waiters a retryable failure, and the panic itself still
	// propagates on the builder's goroutine.
	call.err = fmt.Errorf("ccsp: preprocess (%s): build aborted by panic", key.variant)
	start := time.Now()
	defer func() {
		e.pre.mu.Lock()
		delete(e.pre.inflight, key)
		if call.err == nil {
			e.pre.arts[key] = call.ent
			e.pre.order = append(e.pre.order, key)
			e.observeBuild(start)
		}
		e.pre.mu.Unlock()
		close(call.done)
	}()
	call.ent, call.err = e.buildArtifact(ctx, key)
}

// buildArtifact runs the preprocessing simulator run for one artifact: the
// collective hopset construction of §4 (plus, for the low-degree variant,
// the one-round degree broadcast that defines G'), collected into
// host-side form. Under ExecDirect the same artifact is computed on flat
// matrices instead (direct.go); the entry is byte-identical either way.
func (e *Engine) buildArtifact(ctx context.Context, key artifactKey) (*artifactEntry, error) {
	if e.opts.Execution == ExecDirect {
		return e.buildArtifactDirect(ctx, key)
	}
	n := e.gr.N()
	sr := e.gr.g.AugSemiring()
	board := hitting.NewBoard(n)
	results := make([]*hopset.Result, n)
	var degsShared []int64
	op := fmt.Sprintf("preprocess (%s)", key.variant)
	stats, err := cc.Run(ctx, e.opts.config(n), func(nd *cc.Node) error {
		row := e.gr.g.WeightRow(nd.ID)
		if key.variant == artLowDegree {
			degs := nd.BroadcastVal(int64(len(row)))
			if nd.ID == 0 {
				degsShared = degs
			}
			row = apsp.LowDegreeRow(nd.ID, row, degs, apsp.DegreeThreshold(n))
		}
		res, err := hopset.Build(nd, sr, row, board, key.params)
		if err != nil {
			return err
		}
		results[nd.ID] = res
		return nil
	})
	if err != nil {
		return nil, wrapRun(op, err)
	}
	art, err := hopset.Collect(results)
	if err != nil {
		return nil, wrapRun(op, err)
	}
	return &artifactEntry{art: art, degs: degsShared, stats: statsFrom(stats)}, nil
}

// ArtifactBuild describes one preprocessing run.
type ArtifactBuild struct {
	// Kind is "hopset" (built on G) or "hopset-lowdeg" (built on the
	// low-degree subgraph G' of §6.3).
	Kind string
	// Eps is the hopset stretch parameter ε' the artifact was built with.
	Eps float64
	// Beta is the hop bound β of the artifact's (β, ε')-guarantee.
	Beta int
	// Edges is the number of undirected hopset edges.
	Edges int
	// Stats is the communication cost of the preprocessing run.
	Stats Stats
}

// PreprocessStats reports the preprocessing cost of an Engine, separately
// from per-query Stats. Total merged with the Stats of the queries run so
// far gives exactly what the corresponding one-shot calls would have
// reported.
type PreprocessStats struct {
	// Builds lists each artifact construction, in completion order.
	Builds []ArtifactBuild
	// Total is the merged cost of all builds.
	Total Stats
}

// PreprocessStats returns the cost of all preprocessing runs completed so
// far (lazy artifacts appear once their first triggering query arrives).
func (e *Engine) PreprocessStats() PreprocessStats {
	e.pre.mu.Lock()
	defer e.pre.mu.Unlock()
	ps := PreprocessStats{Total: Stats{Nodes: e.gr.N()}}
	for _, key := range e.pre.order {
		ent := e.pre.arts[key]
		ps.Builds = append(ps.Builds, ArtifactBuild{
			Kind:  key.variant.String(),
			Eps:   key.params.Eps,
			Beta:  ent.art.Beta,
			Edges: ent.art.Edges(),
			Stats: ent.stats,
		})
		ps.Total = ps.Total.Merge(ent.stats)
	}
	return ps
}

// Graph returns the engine's (immutable) input graph. It is the
// engine's private deep copy: mutating it corrupts this engine's
// cached artifacts, so treat it as read-only.
func (e *Engine) Graph() *Graph { return e.gr }

// Epoch returns the graph version this engine was built at: 0 for an
// engine built directly with NewEngine, the generation number assigned
// by the owning DynamicEngine after a rebuild, or the persisted epoch
// for an engine restored with LoadEngine.
func (e *Engine) Epoch() uint64 { return e.epoch }

// Options returns the normalized options the engine runs with.
func (e *Engine) Options() Options { return e.opts }

// normalizeSources validates and deduplicates a source list, returning
// the membership vector, the ascending source list and the column index
// of each source.
func normalizeSources(n int, sources []int) (inS []bool, srcList []int, srcIdx map[int32]int, err error) {
	inS = make([]bool, n)
	for _, s := range sources {
		if s < 0 || s >= n {
			return nil, nil, nil, fmt.Errorf("%w: source %d out of range [0,%d)", ErrInvalidSource, s, n)
		}
		inS[s] = true
	}
	srcList = make([]int, 0, len(sources))
	for v := 0; v < n; v++ {
		if inS[v] {
			srcList = append(srcList, v)
		}
	}
	if len(srcList) == 0 {
		return nil, nil, nil, fmt.Errorf("%w: empty source set", ErrInvalidSource)
	}
	srcIdx = make(map[int32]int, len(srcList))
	for i, s := range srcList {
		srcIdx[int32(s)] = i
	}
	return inS, srcList, srcIdx, nil
}

// MSSP answers a (1+ε)-approximate multi-source query (Theorem 3) from
// the cached hopset: one β-hop source detection on G ∪ H, no hopset
// construction. Safe to call concurrently; canceling ctx aborts the query
// run at its next barrier.
func (e *Engine) MSSP(ctx context.Context, sources []int) (*MSSPResult, error) {
	n := e.gr.N()
	inS, srcList, srcIdx, err := normalizeSources(n, sources)
	if err != nil {
		return nil, err
	}
	ent, err := e.artifact(ctx, e.baseKey())
	if err != nil {
		return nil, err
	}
	if e.opts.Execution == ExecDirect {
		return e.msspDirect(ctx, inS, srcList, srcIdx, ent)
	}
	sr := e.gr.g.AugSemiring()
	dist := make([][]int64, n)
	stats, err := cc.Run(ctx, e.opts.config(n), func(nd *cc.Node) error {
		res, err := mssp.RunWithHopset(nd, sr, e.gr.g.WeightRow(nd.ID), inS, ent.art.At(nd.ID))
		if err != nil {
			return err
		}
		row := make([]int64, len(srcList))
		for i := range row {
			row[i] = Unreachable
		}
		for _, en := range res.Dist {
			if i, ok := srcIdx[en.Col]; ok {
				row[i] = en.Val.W
			}
		}
		dist[nd.ID] = row
		return nil
	})
	if err != nil {
		return nil, wrapRun("MSSP", err)
	}
	return &MSSPResult{Sources: srcList, Dist: dist, Stats: statsFrom(stats)}, nil
}

// SSSP answers an exact single-source query (Theorem 33). The shortcut
// algorithm does not use a hopset, so the query needs no preprocessing
// artifacts at all.
func (e *Engine) SSSP(ctx context.Context, source int) (*SSSPResult, error) {
	n := e.gr.N()
	if source < 0 || source >= n {
		return nil, fmt.Errorf("%w: source %d out of range [0,%d)", ErrInvalidSource, source, n)
	}
	if e.opts.Execution == ExecDirect {
		return e.ssspDirect(ctx, source)
	}
	sr := e.gr.g.AugSemiring()
	var dist []int64
	var iters int
	stats, err := cc.Run(ctx, e.opts.config(n), func(nd *cc.Node) error {
		d, it := sssp.Exact(nd, sr, e.gr.g.WeightRow(nd.ID), source, 0)
		if nd.ID == 0 {
			dist = append([]int64(nil), d...)
			iters = it
		}
		return nil
	})
	if err != nil {
		return nil, wrapRun("SSSP", err)
	}
	return &SSSPResult{Source: source, Dist: dist, Iterations: iters, Stats: statsFrom(stats)}, nil
}

// apspQueryAlgo is the query-only stage of one APSP variant.
type apspQueryAlgo func(nd *cc.Node, sr semiring.AugMinPlus, wrow matrix.Row[semiring.WH], boards *hitting.BoardSeq) ([]int64, error)

// runAPSPQuery launches the query-only run shared by the APSP methods.
func (e *Engine) runAPSPQuery(ctx context.Context, name string, algo apspQueryAlgo) (*APSPResult, error) {
	n := e.gr.N()
	sr := e.gr.g.AugSemiring()
	boards := hitting.NewBoardSeq(n)
	dist := make([][]int64, n)
	stats, err := cc.Run(ctx, e.opts.config(n), func(nd *cc.Node) error {
		row, err := algo(nd, sr, e.gr.g.WeightRow(nd.ID), boards)
		if err != nil {
			return err
		}
		dist[nd.ID] = row
		return nil
	})
	if err != nil {
		return nil, wrapRun(name+" APSP", err)
	}
	return &APSPResult{Dist: dist, Stats: statsFrom(stats)}, nil
}

// APSP answers an all-pairs query with the strongest guarantee for the
// input: the (2+ε) unweighted algorithm (Theorem 31) when all edges have
// weight 1, the (2+ε, (1+ε)W) weighted algorithm (Theorem 28) otherwise.
func (e *Engine) APSP(ctx context.Context) (*APSPResult, error) {
	if e.gr.Unweighted() {
		return e.APSPUnweighted(ctx)
	}
	return e.APSPWeighted(ctx)
}

// APSPWeighted answers a (2+ε, (1+ε)W)-approximate all-pairs query
// (Theorem 28) from the cached ε/2 hopset.
func (e *Engine) APSPWeighted(ctx context.Context) (*APSPResult, error) {
	ent, err := e.artifact(ctx, e.apspKey())
	if err != nil {
		return nil, err
	}
	if e.opts.Execution == ExecDirect {
		return e.apspDirect(ctx, "weighted", func() ([][]int64, error) {
			_, gh := e.artifactMats(artFull, ent)
			return apsp.TwoPlusEpsWeightedDirect(ctx, e.gr.g.AugSemiring(), e.weightMat(), gh, ent.art.Beta, e.opts.Workers)
		})
	}
	eps := e.opts.Epsilon
	return e.runAPSPQuery(ctx, "weighted", func(nd *cc.Node, sr semiring.AugMinPlus, wrow matrix.Row[semiring.WH], boards *hitting.BoardSeq) ([]int64, error) {
		return apsp.TwoPlusEpsWeightedWithHopset(nd, sr, wrow, eps, boards, ent.art.At(nd.ID))
	})
}

// APSPWeighted3 answers the simpler (3+ε)-approximate weighted all-pairs
// query of §6.1; it shares the ε/2 hopset artifact with APSPWeighted.
func (e *Engine) APSPWeighted3(ctx context.Context) (*APSPResult, error) {
	ent, err := e.artifact(ctx, e.apspKey())
	if err != nil {
		return nil, err
	}
	if e.opts.Execution == ExecDirect {
		return e.apspDirect(ctx, "3+eps", func() ([][]int64, error) {
			_, gh := e.artifactMats(artFull, ent)
			return apsp.ThreePlusEpsDirect(ctx, e.gr.g.AugSemiring(), e.weightMat(), gh, ent.art.Beta, e.opts.Workers)
		})
	}
	eps := e.opts.Epsilon
	return e.runAPSPQuery(ctx, "3+eps", func(nd *cc.Node, sr semiring.AugMinPlus, wrow matrix.Row[semiring.WH], boards *hitting.BoardSeq) ([]int64, error) {
		return apsp.ThreePlusEpsWithHopset(nd, sr, wrow, eps, boards, ent.art.At(nd.ID))
	})
}

// APSPUnweighted answers a (2+ε)-approximate all-pairs query on an
// unweighted graph (Theorem 31). It uses two cached artifacts: the ε/2
// hopset on G and the ε/2 hopset on the low-degree subgraph G'.
func (e *Engine) APSPUnweighted(ctx context.Context) (*APSPResult, error) {
	entG, err := e.artifact(ctx, e.apspKey())
	if err != nil {
		return nil, err
	}
	entLow, err := e.artifact(ctx, e.apspLowKey())
	if err != nil {
		return nil, err
	}
	if e.opts.Execution == ExecDirect {
		return e.apspDirect(ctx, "unweighted", func() ([][]int64, error) {
			_, ghG := e.artifactMats(artFull, entG)
			low, ghLow := e.artifactMats(artLowDegree, entLow)
			return apsp.TwoPlusEpsUnweightedDirect(ctx, e.gr.g.AugSemiring(), e.weightMat(), ghG, entG.art.Beta, low, ghLow, entLow.art.Beta, e.opts.Workers)
		})
	}
	eps := e.opts.Epsilon
	return e.runAPSPQuery(ctx, "unweighted", func(nd *cc.Node, sr semiring.AugMinPlus, wrow matrix.Row[semiring.WH], boards *hitting.BoardSeq) ([]int64, error) {
		return apsp.TwoPlusEpsUnweightedWithHopsets(nd, sr, wrow, eps, boards, entLow.degs, entG.art.At(nd.ID), entLow.art.At(nd.ID))
	})
}

// Diameter answers a near-3/2 diameter query (§7.2) from the cached base
// hopset: both MSSP stages reuse it.
func (e *Engine) Diameter(ctx context.Context) (*DiameterResult, error) {
	ent, err := e.artifact(ctx, e.baseKey())
	if err != nil {
		return nil, err
	}
	if e.opts.Execution == ExecDirect {
		return e.diameterDirect(ctx, ent)
	}
	n := e.gr.N()
	sr := e.gr.g.AugSemiring()
	boards := hitting.NewBoardSeq(n)
	var estimate int64
	stats, err := cc.Run(ctx, e.opts.config(n), func(nd *cc.Node) error {
		est, err := diameter.ApproxWithHopset(nd, sr, e.gr.g.WeightRow(nd.ID), boards, ent.art.At(nd.ID))
		if err != nil {
			return err
		}
		if nd.ID == 0 {
			estimate = est
		}
		return nil
	})
	if err != nil {
		return nil, wrapRun("diameter", err)
	}
	return &DiameterResult{Estimate: estimate, Stats: statsFrom(stats)}, nil
}

// KNearest answers a k-nearest query (Theorem 18 over the
// witness-tracking semiring). It needs no preprocessing artifacts.
func (e *Engine) KNearest(ctx context.Context, k int) (*KNearestResult, error) {
	if k < 1 {
		return nil, fmt.Errorf("%w: k must be positive, got %d", ErrInvalidOption, k)
	}
	if e.opts.Execution == ExecDirect {
		return e.knearestDirect(ctx, k)
	}
	n := e.gr.N()
	sr := e.gr.g.RoutedSemiring()
	out := make([][]Neighbor, n)
	stats, err := cc.Run(ctx, e.opts.config(n), func(nd *cc.Node) error {
		row := disttools.KNearest[semiring.WHF](nd, sr, e.gr.g.WeightRowRouted(nd.ID), k)
		nb := make([]Neighbor, 0, len(row))
		for _, en := range row {
			nb = append(nb, Neighbor{Node: int(en.Col), Dist: en.Val.W, Hops: int(en.Val.H), FirstHop: int(en.Val.FH)})
		}
		sort.Slice(nb, func(i, j int) bool {
			if nb[i].Dist != nb[j].Dist {
				return nb[i].Dist < nb[j].Dist
			}
			if nb[i].Hops != nb[j].Hops {
				return nb[i].Hops < nb[j].Hops
			}
			return nb[i].Node < nb[j].Node
		})
		out[nd.ID] = nb
		return nil
	})
	if err != nil {
		return nil, wrapRun("k-nearest", err)
	}
	return &KNearestResult{Neighbors: out, Stats: statsFrom(stats)}, nil
}

// SourceDetection answers an (S, d, k)-source detection query
// (Theorem 19). It needs no preprocessing artifacts. A hop bound d larger
// than n is clamped to n: simple paths have at most n-1 hops, so the
// answers are identical and the run does not pay for dead iterations (nor
// can a wire-supplied d drive unbounded work).
func (e *Engine) SourceDetection(ctx context.Context, sources []int, d, k int) (*SourceDetectionResult, error) {
	if d < 1 || k < 1 {
		return nil, fmt.Errorf("%w: d and k must be positive (d=%d, k=%d)", ErrInvalidOption, d, k)
	}
	n := e.gr.N()
	if d > n {
		d = n
	}
	inS := make([]bool, n)
	for _, s := range sources {
		if s < 0 || s >= n {
			return nil, fmt.Errorf("%w: source %d out of range [0,%d)", ErrInvalidSource, s, n)
		}
		inS[s] = true
	}
	if e.opts.Execution == ExecDirect {
		return e.sourceDetectionDirect(ctx, inS, d, k)
	}
	sr := e.gr.g.AugSemiring()
	out := make([][]Neighbor, n)
	stats, err := cc.Run(ctx, e.opts.config(n), func(nd *cc.Node) error {
		row := disttools.SourceDetectK[semiring.WH](nd, sr, e.gr.g.WeightRow(nd.ID), inS, d, k)
		nb := make([]Neighbor, 0, len(row))
		for _, en := range row {
			nb = append(nb, Neighbor{Node: int(en.Col), Dist: en.Val.W, Hops: int(en.Val.H), FirstHop: -1})
		}
		out[nd.ID] = nb
		return nil
	})
	if err != nil {
		return nil, wrapRun("source detection", err)
	}
	return &SourceDetectionResult{Detected: out, Stats: statsFrom(stats)}, nil
}

// oneShot runs a single query on a fresh lazy Engine and folds the
// preprocessing cost into the returned Stats, preserving the historical
// one-shot accounting (preprocess + query = the single-run totals).
func oneShot[R any](ctx context.Context, gr *Graph, opts Options, query func(*Engine, context.Context) (R, error), stats func(R) *Stats) (R, error) {
	var zero R
	eng, err := newEngine(gr, opts)
	if err != nil {
		return zero, err
	}
	res, err := query(eng, ctx)
	if err != nil {
		return zero, err
	}
	st := stats(res)
	*st = eng.PreprocessStats().Total.Merge(*st)
	return res, nil
}
