package ccsp

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/congestedclique/ccsp/api"
)

// Query answers one typed api.Request: the single dispatcher behind the
// serving daemon's POST /v1/query, the client package, and cmd/ccsp. It
// validates the union, runs the matching Engine method, and converts the
// result to its wire form (distances use api.Unreachable = -1 for
// disconnected pairs; everything else is a value-for-value copy).
//
// A KindAPSP request with the auto variant resolves against the engine's
// graph - the response reports the concrete algorithm that ran. A
// KindDistance request runs a single-source MSSP and projects the pair
// out, exactly as the /v1/distance endpoint always has.
//
// Errors keep the typed taxonomy: structural problems wrap
// api.ErrMalformed, everything else wraps the ccsp sentinels
// (ErrCanceled, ErrRoundLimit, ErrInvalidSource, ErrInvalidOption), so
// errors.Is dispatch works identically to the direct Engine methods.
func (e *Engine) Query(ctx context.Context, req api.Request) (*api.Response, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	defer e.observeQuery(time.Now())
	// The engine serves exactly one graph; the Graph field is a serving-
	// layer routing concern, echoed back so merged fan-out responses stay
	// attributable.
	resp := &api.Response{Kind: req.Kind, Graph: req.Graph}
	var stats Stats
	switch req.Kind {
	case api.KindSSSP:
		res, err := e.SSSP(ctx, req.SSSP.Source)
		if err != nil {
			return nil, err
		}
		resp.SSSP = &api.SSSPResult{Source: res.Source, Dist: wireVec(res.Dist), Iterations: res.Iterations}
		stats = res.Stats
	case api.KindMSSP:
		res, err := e.MSSP(ctx, req.MSSP.Sources)
		if err != nil {
			return nil, err
		}
		resp.MSSP = &api.MSSPResult{Sources: res.Sources, Dist: wireMat(res.Dist)}
		stats = res.Stats
	case api.KindAPSP:
		variant := e.ResolveAPSPVariant(req.Variant())
		res, err := e.apspByVariant(ctx, variant)
		if err != nil {
			return nil, err
		}
		resp.APSP = &api.APSPResult{Variant: variant, Dist: wireMat(res.Dist)}
		stats = res.Stats
	case api.KindDistance:
		from, to := req.Distance.From, req.Distance.To
		if to < 0 || to >= e.gr.N() {
			return nil, fmt.Errorf("%w: node %d out of range [0,%d)", ErrInvalidSource, to, e.gr.N())
		}
		res, err := e.MSSP(ctx, []int{from})
		if err != nil {
			return nil, err
		}
		d := wireDist(res.Dist[to][0])
		resp.Distance = &api.DistanceResult{From: from, To: to, Distance: d, Reachable: d != api.Unreachable}
		stats = res.Stats
	case api.KindDiameter:
		res, err := e.Diameter(ctx)
		if err != nil {
			return nil, err
		}
		resp.Diameter = &api.DiameterResult{Estimate: res.Estimate}
		stats = res.Stats
	case api.KindKNearest:
		res, err := e.KNearest(ctx, req.KNearest.K)
		if err != nil {
			return nil, err
		}
		resp.KNearest = &api.KNearestResult{K: req.KNearest.K, Neighbors: wireNeighborLists(res.Neighbors)}
		stats = res.Stats
	case api.KindSourceDetection:
		p := req.SourceDetection
		res, err := e.SourceDetection(ctx, p.Sources, p.D, p.K)
		if err != nil {
			return nil, err
		}
		resp.SourceDetection = &api.SourceDetectionResult{D: p.D, K: p.K, Detected: wireNeighborLists(res.Detected)}
		stats = res.Stats
	default:
		// Validate() guarantees a known kind; this is unreachable.
		return nil, fmt.Errorf("%w: unknown kind %q", api.ErrMalformed, req.Kind)
	}
	resp.Stats = wireStats(stats)
	return resp, nil
}

// ResolveAPSPVariant maps the auto variant to the concrete algorithm the
// engine's graph selects (Theorem 31 for unit weights, Theorem 28
// otherwise); explicit variants pass through. Serving layers use it to
// key caches by the algorithm that actually runs.
func (e *Engine) ResolveAPSPVariant(v api.APSPVariant) api.APSPVariant {
	if v == api.APSPAuto || v == "" {
		if e.gr.Unweighted() {
			return api.APSPUnweighted
		}
		return api.APSPWeighted
	}
	return v
}

// apspByVariant dispatches a concrete (non-auto) APSP variant.
func (e *Engine) apspByVariant(ctx context.Context, v api.APSPVariant) (*APSPResult, error) {
	switch v {
	case api.APSPWeighted:
		return e.APSPWeighted(ctx)
	case api.APSPWeighted3:
		return e.APSPWeighted3(ctx)
	case api.APSPUnweighted:
		return e.APSPUnweighted(ctx)
	default:
		return nil, fmt.Errorf("%w: unknown apsp variant %q", api.ErrMalformed, v)
	}
}

// APIError converts an error from the typed taxonomy into its wire form.
// The context sentinels are checked first (ErrCanceled wraps them): an
// expired deadline and a canceled caller are different codes, the same
// distinction the HTTP layer draws between 504 and 499. Unclassified
// errors map to CodeInternal.
func APIError(err error) *api.Error {
	if err == nil {
		return nil
	}
	code := api.CodeInternal
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		code = api.CodeDeadline
	case errors.Is(err, context.Canceled), errors.Is(err, ErrCanceled):
		code = api.CodeCanceled
	case errors.Is(err, ErrRoundLimit):
		code = api.CodeRoundLimit
	case errors.Is(err, ErrInvalidSource):
		code = api.CodeInvalidSource
	case errors.Is(err, ErrInvalidOption):
		code = api.CodeInvalidOption
	case errors.Is(err, ErrUnknownGraph):
		code = api.CodeUnknownGraph
	case errors.Is(err, ErrOverloaded):
		code = api.CodeOverloaded
	case errors.Is(err, ErrUnavailable):
		code = api.CodeUnavailable
	case errors.Is(err, api.ErrMalformed):
		code = api.CodeMalformed
	}
	return &api.Error{Code: code, Message: err.Error()}
}

// wireDist maps the in-process Unreachable sentinel to the wire's -1.
func wireDist(d int64) int64 {
	if d >= Unreachable {
		return api.Unreachable
	}
	return d
}

func wireVec(dist []int64) []int64 {
	out := make([]int64, len(dist))
	for i, d := range dist {
		out[i] = wireDist(d)
	}
	return out
}

func wireMat(dist [][]int64) [][]int64 {
	out := make([][]int64, len(dist))
	for i, row := range dist {
		out[i] = wireVec(row)
	}
	return out
}

func wireNeighborLists(lists [][]Neighbor) [][]api.Neighbor {
	out := make([][]api.Neighbor, len(lists))
	for v, nbs := range lists {
		row := make([]api.Neighbor, len(nbs))
		for i, nb := range nbs {
			row[i] = api.Neighbor{Node: nb.Node, Dist: nb.Dist, Hops: nb.Hops, FirstHop: nb.FirstHop}
		}
		out[v] = row
	}
	return out
}

// wireStats converts a run's Stats to the wire core.
func wireStats(s Stats) *api.Stats {
	return &api.Stats{TotalRounds: s.TotalRounds, SimRounds: s.SimRounds, Messages: s.Messages, Words: s.Words}
}
