package ccsp

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"
)

// unweightedTestGraph builds a connected unit-weight graph (for the
// low-degree APSP artifact).
func unweightedTestGraph(n int) *Graph {
	gr := NewGraph(n)
	for v := 1; v < n; v++ {
		gr.MustAddEdge(v, v-1, 1)
	}
	for v := 0; v+5 < n; v += 3 {
		gr.MustAddEdge(v, v+5, 1)
	}
	return gr
}

// TestSnapshotRoundTrip is the acceptance criterion of the snapshot
// subsystem: Save → Load round-trips byte-identically, and the loaded
// engine answers every query with results and round-stats equal to the
// freshly preprocessed engine it was saved from.
func TestSnapshotRoundTrip(t *testing.T) {
	gr := testGraph(24, 30, 8, 77)
	opts := Options{Epsilon: 0.5}
	sources := []int{2, 7, 13}

	warm, err := NewEngine(context.Background(), gr, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Populate both weighted artifacts (base + ε/2) before saving.
	wantM, err := warm.MSSP(context.Background(), sources)
	if err != nil {
		t.Fatal(err)
	}
	wantA, err := warm.APSPWeighted(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wantD, err := warm.Diameter(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wantS, err := warm.SSSP(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := warm.Save(&buf); err != nil {
		t.Fatal(err)
	}
	saved := append([]byte(nil), buf.Bytes()...)

	// Save is deterministic: saving again produces identical bytes.
	var buf2 bytes.Buffer
	if err := warm.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(saved, buf2.Bytes()) {
		t.Error("two Saves of the same engine differ")
	}

	loaded, err := LoadEngine(context.Background(), bytes.NewReader(saved))
	if err != nil {
		t.Fatal(err)
	}

	// The loaded engine re-Saves byte-identically (the round-trip
	// fingerprint).
	var buf3 bytes.Buffer
	if err := loaded.Save(&buf3); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(saved, buf3.Bytes()) {
		t.Error("Save → Load → Save is not byte-identical")
	}

	// Preprocessing stats survive verbatim (including wall-clock, which
	// is data once recorded).
	if !reflect.DeepEqual(loaded.PreprocessStats(), warm.PreprocessStats()) {
		t.Errorf("loaded PreprocessStats differ:\n got %+v\nwant %+v",
			loaded.PreprocessStats(), warm.PreprocessStats())
	}
	if loaded.Graph().N() != gr.N() || loaded.Graph().M() != gr.M() {
		t.Errorf("loaded graph is %d nodes / %d edges, want %d / %d",
			loaded.Graph().N(), loaded.Graph().M(), gr.N(), gr.M())
	}
	if loaded.Options() != warm.Options() {
		t.Errorf("loaded options %+v, want %+v", loaded.Options(), warm.Options())
	}

	// Every query on the loaded engine matches the warm engine: same
	// distances, same deterministic round-stats, and no new builds.
	gotM, err := loaded.MSSP(context.Background(), sources)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotM.Dist, wantM.Dist) || !reflect.DeepEqual(gotM.Sources, wantM.Sources) {
		t.Error("loaded MSSP distances differ")
	}
	statsEqual(t, "loaded MSSP", gotM.Stats, wantM.Stats)

	gotA, err := loaded.APSPWeighted(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotA.Dist, wantA.Dist) {
		t.Error("loaded APSP distances differ")
	}
	statsEqual(t, "loaded APSP", gotA.Stats, wantA.Stats)

	gotD, err := loaded.Diameter(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if gotD.Estimate != wantD.Estimate {
		t.Errorf("loaded diameter %d, want %d", gotD.Estimate, wantD.Estimate)
	}
	statsEqual(t, "loaded diameter", gotD.Stats, wantD.Stats)

	gotS, err := loaded.SSSP(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotS.Dist, wantS.Dist) {
		t.Error("loaded SSSP distances differ")
	}
	statsEqual(t, "loaded SSSP", gotS.Stats, wantS.Stats)

	if n := len(loaded.PreprocessStats().Builds); n != 2 {
		t.Errorf("loaded engine ran %d builds after queries, want the snapshot's 2", n)
	}

	// And against a cold engine built from scratch: the snapshot is
	// indistinguishable from fresh preprocessing.
	cold, err := NewEngine(context.Background(), testGraph(24, 30, 8, 77), opts)
	if err != nil {
		t.Fatal(err)
	}
	coldM, err := cold.MSSP(context.Background(), sources)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotM.Dist, coldM.Dist) {
		t.Error("loaded MSSP differs from cold-engine MSSP")
	}
	statsEqual(t, "loaded vs cold MSSP", gotM.Stats, coldM.Stats)
}

// TestSnapshotDirectInterop extends the round-trip contract to ExecDirect:
// a direct-mode engine saves and loads like any other (byte-identical
// re-save, verbatim PreprocessStats, preserved execution mode), and the
// answers served from its snapshot are byte-identical to the answers
// served from a simulated-mode snapshot of the same graph and options.
func TestSnapshotDirectInterop(t *testing.T) {
	ctx := context.Background()
	gr := testGraph(24, 30, 8, 77)
	sources := []int{2, 7, 13}

	dir, err := NewEngine(ctx, gr, Options{Epsilon: 0.5, Execution: ExecDirect})
	if err != nil {
		t.Fatal(err)
	}
	// Populate both weighted artifacts (base + ε/2) before saving.
	if _, err := dir.MSSP(ctx, sources); err != nil {
		t.Fatal(err)
	}
	if _, err := dir.APSPWeighted(ctx); err != nil {
		t.Fatal(err)
	}

	var dirBuf bytes.Buffer
	if err := dir.Save(&dirBuf); err != nil {
		t.Fatal(err)
	}
	saved := append([]byte(nil), dirBuf.Bytes()...)
	loadedDir, err := LoadEngine(ctx, bytes.NewReader(saved))
	if err != nil {
		t.Fatal(err)
	}
	if got := loadedDir.Options().Execution; got != ExecDirect {
		t.Errorf("loaded engine execution = %v, want direct", got)
	}
	var reBuf bytes.Buffer
	if err := loadedDir.Save(&reBuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(saved, reBuf.Bytes()) {
		t.Error("direct-mode Save → Load → Save is not byte-identical")
	}
	if !reflect.DeepEqual(loadedDir.PreprocessStats(), dir.PreprocessStats()) {
		t.Errorf("loaded direct PreprocessStats differ:\n got %+v\nwant %+v",
			loadedDir.PreprocessStats(), dir.PreprocessStats())
	}

	// A simulated-mode snapshot of the same graph and options.
	sim, err := NewEngine(ctx, gr, Options{Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.MSSP(ctx, sources); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.APSPWeighted(ctx); err != nil {
		t.Fatal(err)
	}
	var simBuf bytes.Buffer
	if err := sim.Save(&simBuf); err != nil {
		t.Fatal(err)
	}
	loadedSim, err := LoadEngine(ctx, &simBuf)
	if err != nil {
		t.Fatal(err)
	}

	// Answers from the two snapshots are byte-identical; only the cost
	// reports differ (wall-clock vs rounds).
	dM, err := loadedDir.MSSP(ctx, sources)
	if err != nil {
		t.Fatal(err)
	}
	sM, err := loadedSim.MSSP(ctx, sources)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dM.Dist, sM.Dist) || !reflect.DeepEqual(dM.Sources, sM.Sources) {
		t.Error("MSSP from direct snapshot differs from simulated snapshot")
	}
	if dM.Stats.Exec != ExecDirect || dM.Stats.TotalRounds != 0 {
		t.Errorf("direct snapshot query stats = %+v, want direct tag and zero rounds", dM.Stats)
	}
	dA, err := loadedDir.APSPWeighted(ctx)
	if err != nil {
		t.Fatal(err)
	}
	sA, err := loadedSim.APSPWeighted(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dA.Dist, sA.Dist) {
		t.Error("APSP from direct snapshot differs from simulated snapshot")
	}
	dD, err := loadedDir.Diameter(ctx) // served from the snapshot's base artifact
	if err != nil {
		t.Fatal(err)
	}
	sD, err := loadedSim.Diameter(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if dD.Estimate != sD.Estimate {
		t.Errorf("diameter from direct snapshot %d, simulated snapshot %d", dD.Estimate, sD.Estimate)
	}
}

// TestSnapshotLowDegreeArtifact round-trips the §6.3 low-degree variant:
// its artifact carries the degree broadcast alongside the hopset.
func TestSnapshotLowDegreeArtifact(t *testing.T) {
	gr := unweightedTestGraph(20)
	warm, err := NewEngine(context.Background(), gr, Options{Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	want, err := warm.APSPUnweighted(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n := len(warm.PreprocessStats().Builds); n != 3 {
		t.Fatalf("unweighted APSP engine has %d builds, want 3 (base, ε/2, ε/2 low-degree)", n)
	}

	var buf bytes.Buffer
	if err := warm.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEngine(context.Background(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.APSPUnweighted(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Dist, want.Dist) {
		t.Error("loaded unweighted APSP distances differ")
	}
	statsEqual(t, "loaded unweighted APSP", got.Stats, want.Stats)
	if n := len(loaded.PreprocessStats().Builds); n != 3 {
		t.Errorf("loaded engine ran %d builds, want the snapshot's 3", n)
	}
}

// TestSnapshotLazyAfterLoad: artifacts missing from a snapshot are built
// lazily by the loaded engine, preserving one-shot-equal results.
func TestSnapshotLazyAfterLoad(t *testing.T) {
	gr := testGraph(18, 20, 5, 42)
	opts := Options{Epsilon: 0.5}
	warm, err := NewEngine(context.Background(), gr, opts) // base artifact only
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := warm.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEngine(context.Background(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(loaded.PreprocessStats().Builds); n != 1 {
		t.Fatalf("loaded engine has %d builds, want 1", n)
	}
	got, err := loaded.APSPWeighted(context.Background()) // needs the ε/2 artifact: lazy build
	if err != nil {
		t.Fatal(err)
	}
	if n := len(loaded.PreprocessStats().Builds); n != 2 {
		t.Errorf("lazy build after load: %d builds, want 2", n)
	}
	want, err := APSPWeighted(context.Background(), gr, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Dist, want.Dist) {
		t.Error("lazily-built APSP after load differs from one-shot")
	}
}

// TestLoadEngineRejectsBadInput: corruption, truncation and version skew
// all surface as errors through the public API.
func TestLoadEngineRejectsBadInput(t *testing.T) {
	warm, err := NewEngine(context.Background(), testGraph(12, 10, 4, 9), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := warm.Save(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	if _, err := LoadEngine(context.Background(), bytes.NewReader(valid[:len(valid)-7])); err == nil {
		t.Error("truncated snapshot loaded without error")
	}
	mut := append([]byte(nil), valid...)
	mut[len(mut)/2] ^= 0x01
	if _, err := LoadEngine(context.Background(), bytes.NewReader(mut)); err == nil {
		t.Error("corrupt snapshot loaded without error")
	}
	mut = append([]byte(nil), valid...)
	mut[8] = 0x63
	if _, err := LoadEngine(context.Background(), bytes.NewReader(mut)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("version-skewed snapshot: err = %v, want version error", err)
	}
	if _, err := LoadEngine(context.Background(), bytes.NewReader(nil)); err == nil {
		t.Error("empty input loaded without error")
	}
}
