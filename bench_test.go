// Package ccsp_test is an external test package on purpose:
// internal/bench's E14 experiment imports the root package (it exercises
// the public Engine), so these benchmarks must sit outside package ccsp
// to avoid an import cycle through the test binary.
package ccsp_test

// Top-level benchmarks: one per reproduction experiment of DESIGN.md §4.
// Each benchmark regenerates its experiment's table once per iteration and
// reports the headline metric (total rounds of the largest configuration)
// through b.ReportMetric, so `go test -bench=.` reproduces every "table and
// figure" of the evaluation. cmd/ccbench prints the full tables.

import (
	"strconv"
	"testing"

	"github.com/congestedclique/ccsp/internal/bench"
)

func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tab, err := bench.Run(id, bench.Quick)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(tab.Rows) == 0 {
			b.Fatalf("%s: empty table", id)
		}
		// Report the rounds column of the last row as the headline metric.
		for ci, col := range tab.Columns {
			if col == "rounds" {
				if v, err := strconv.ParseFloat(tab.Rows[len(tab.Rows)-1][ci], 64); err == nil {
					b.ReportMetric(v, "rounds")
				}
			}
		}
	}
}

func BenchmarkE1SparseMM(b *testing.B)        { runExperiment(b, "E1") }
func BenchmarkE2FilteredMM(b *testing.B)      { runExperiment(b, "E2") }
func BenchmarkE3KNearest(b *testing.B)        { runExperiment(b, "E3") }
func BenchmarkE4SourceDetect(b *testing.B)    { runExperiment(b, "E4") }
func BenchmarkE5DistThrough(b *testing.B)     { runExperiment(b, "E5") }
func BenchmarkE6Hopset(b *testing.B)          { runExperiment(b, "E6") }
func BenchmarkE7MSSP(b *testing.B)            { runExperiment(b, "E7") }
func BenchmarkE8WeightedAPSP(b *testing.B)    { runExperiment(b, "E8") }
func BenchmarkE9UnweightedAPSP(b *testing.B)  { runExperiment(b, "E9") }
func BenchmarkE10ExactSSSP(b *testing.B)      { runExperiment(b, "E10") }
func BenchmarkE11Diameter(b *testing.B)       { runExperiment(b, "E11") }
func BenchmarkE12Comparison(b *testing.B)     { runExperiment(b, "E12") }
func BenchmarkE14Amortization(b *testing.B)   { runExperiment(b, "E14") }
func BenchmarkA1HittingSets(b *testing.B)     { runExperiment(b, "A1") }
func BenchmarkA2HopsetConstants(b *testing.B) { runExperiment(b, "A2") }
func BenchmarkA3FilteredVsDense(b *testing.B) { runExperiment(b, "A3") }
func BenchmarkA4PhaseBreakdown(b *testing.B)  { runExperiment(b, "A4") }
