package ccsp

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"github.com/congestedclique/ccsp/api"
)

// TestBatchAmortizesPreprocessing is the E14 accounting regression at the
// Batch API: a batch of q=8 distinct MSSP requests charges the hopset
// phases exactly once (in PreprocessStats, not in any query), and the
// engine total equals one one-shot's hopset cost.
func TestBatchAmortizesPreprocessing(t *testing.T) {
	gr := testGraph(24, 30, 8, 77)
	opts := Options{Epsilon: 0.5}

	oneShotRef, err := MSSP(context.Background(), gr, []int{0, 8}, opts)
	if err != nil {
		t.Fatal(err)
	}

	eng, err := NewEngine(context.Background(), gr, opts)
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]api.Request, 0, 8)
	for i := 0; i < 8; i++ {
		reqs = append(reqs, api.Request{Kind: api.KindMSSP, MSSP: &api.MSSPParams{Sources: []int{i, i + 8}}})
	}
	resps, err := eng.Batch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != len(reqs) {
		t.Fatalf("%d responses for %d requests", len(resps), len(reqs))
	}
	querySum := Stats{}
	for i, resp := range resps {
		if resp.Error != nil {
			t.Fatalf("request %d failed: %v", i, resp.Error)
		}
		if resp.MSSP == nil || resp.Stats == nil {
			t.Fatalf("request %d: malformed response %+v", i, resp)
		}
		querySum = querySum.Merge(Stats{TotalRounds: resp.Stats.TotalRounds, SimRounds: resp.Stats.SimRounds,
			Messages: resp.Stats.Messages, Words: resp.Stats.Words})
		// Every response matches the direct engine call.
		direct, err := eng.MSSP(context.Background(), reqs[i].MSSP.Sources)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(resp.MSSP.Dist, wireMat(direct.Dist)) {
			t.Errorf("request %d: batch answer differs from direct call", i)
		}
	}

	// The hopset was charged once: exactly one preprocessing build, whose
	// hopset-phase rounds equal the one-shot's (the E14 bookkeeping).
	ps := eng.PreprocessStats()
	if len(ps.Builds) != 1 {
		t.Fatalf("batch of 8 MSSP requests ran %d preprocessing builds, want 1", len(ps.Builds))
	}
	all := ps.Total.Merge(querySum)
	for phase, rounds := range oneShotRef.Stats.PhaseRounds {
		if strings.HasPrefix(phase, "hopset/") && all.PhaseRounds[phase] != rounds {
			t.Errorf("phase %q: batch total %d rounds, one-shot charges %d once",
				phase, all.PhaseRounds[phase], rounds)
		}
	}
}

// TestBatchLazyArtifactBuildsOnce: a batch whose requests all need the
// lazily built ε/2 APSP artifact coalesces on one in-flight build even
// though the requests run concurrently.
func TestBatchLazyArtifactBuildsOnce(t *testing.T) {
	gr := testGraph(16, 20, 6, 9)
	eng, err := NewEngine(context.Background(), gr, Options{Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	reqs := []api.Request{
		{Kind: api.KindAPSP},
		{Kind: api.KindAPSP, APSP: &api.APSPParams{Variant: api.APSPWeighted}},
		{Kind: api.KindAPSP, APSP: &api.APSPParams{Variant: api.APSPWeighted3}},
	}
	resps, err := eng.Batch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, resp := range resps {
		if resp.Error != nil {
			t.Fatalf("request %d: %v", i, resp.Error)
		}
	}
	// auto resolved to weighted: requests 0 and 1 shared one run.
	if resps[0].APSP.Variant != api.APSPWeighted {
		t.Errorf("auto resolved to %q", resps[0].APSP.Variant)
	}
	if !reflect.DeepEqual(resps[0].APSP.Dist, resps[1].APSP.Dist) || *resps[0].Stats != *resps[1].Stats {
		t.Error("auto and explicit weighted requests did not share a run")
	}
	// Base artifact (eager) + one lazy ε/2 artifact, despite two distinct
	// APSP queries wanting it concurrently.
	if ps := eng.PreprocessStats(); len(ps.Builds) != 2 {
		t.Fatalf("%d preprocessing builds, want 2 (base + shared ε/2)", len(ps.Builds))
	}
}

// TestBatchIsolatesErrors: invalid requests fail alone, with typed wire
// codes, while the rest of the batch answers - and a batch never returns
// a top-level error for per-request failures.
func TestBatchIsolatesErrors(t *testing.T) {
	gr := testGraph(12, 10, 5, 11)
	eng, err := NewEngine(context.Background(), gr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	reqs := []api.Request{
		{Kind: api.KindSSSP, SSSP: &api.SSSPParams{Source: 2}},   // ok
		{Kind: api.KindSSSP, SSSP: &api.SSSPParams{Source: 500}}, // out of range
		{Kind: api.KindMSSP}, // malformed union
		{Kind: api.KindKNearest, KNearest: &api.KNearestParams{K: -2}}, // bad option
		{Kind: api.KindDiameter},                               // ok
		{Kind: api.KindSSSP, SSSP: &api.SSSPParams{Source: 2}}, // duplicate of 0
	}
	resps, err := eng.Batch(context.Background(), reqs)
	if err != nil {
		t.Fatalf("batch error %v; per-request failures must not fail the batch", err)
	}
	if resps[0].Error != nil || resps[0].SSSP == nil {
		t.Errorf("request 0 should succeed: %+v", resps[0].Error)
	}
	if resps[1].Error == nil || resps[1].Error.Code != api.CodeInvalidSource {
		t.Errorf("request 1: error %+v, want invalid_source", resps[1].Error)
	}
	if resps[2].Error == nil || resps[2].Error.Code != api.CodeMalformed {
		t.Errorf("request 2: error %+v, want malformed", resps[2].Error)
	}
	if resps[3].Error == nil || resps[3].Error.Code != api.CodeInvalidOption {
		t.Errorf("request 3: error %+v, want invalid_option", resps[3].Error)
	}
	if resps[4].Error != nil || resps[4].Diameter == nil {
		t.Errorf("request 4 should succeed: %+v", resps[4].Error)
	}
	// Duplicates share the same answer.
	if !reflect.DeepEqual(resps[5].SSSP, resps[0].SSSP) {
		t.Error("duplicate request did not share the response")
	}
	// Failed requests echo their kind for positional dispatch.
	if resps[1].Kind != api.KindSSSP || resps[2].Kind != api.KindMSSP {
		t.Error("error responses lost their request kind")
	}
}

// TestBatchCanceledContext: a context dead on entry is the one condition
// that fails the whole batch, with the usual typed sentinel.
func TestBatchCanceledContext(t *testing.T) {
	gr := testGraph(10, 8, 5, 13)
	eng, err := NewEngine(context.Background(), gr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Batch(ctx, []api.Request{{Kind: api.KindDiameter}}); err == nil {
		t.Fatal("batch with dead context succeeded")
	} else if got := APIError(err); got.Code != api.CodeCanceled {
		t.Errorf("dead-context batch error code %q, want canceled", got.Code)
	}
}
