package ccsp

import (
	"time"

	"github.com/congestedclique/ccsp/internal/telemetry"
)

// Engine-level telemetry, recorded into the process-global
// telemetry.Default registry (ccspd's /metrics page serves it alongside
// the server's own registry): artifact-cache effectiveness and the
// wall-clock cost of preprocessing and queries, split by execution mode
// so the simulated-vs-direct speedup the direct kernel claims is
// readable off a live daemon. Hot-path cost is one atomic increment or
// one histogram observation; the registry mutex is only taken here, at
// package init.
var (
	metArtifactHits = telemetry.Default.Counter("ccsp_engine_artifact_cache_hits_total",
		"Artifact requests answered from the preprocessing cache.")
	metArtifactBuilds = execCounters("ccsp_engine_artifact_builds_total",
		"Preprocessing artifact builds completed, by execution mode.")
	metPreprocessSeconds = execHistograms("ccsp_engine_preprocess_seconds",
		"Wall-clock duration of completed artifact builds, by execution mode.")
	metQueries = execCounters("ccsp_engine_queries_total",
		"Engine.Query calls (batch positions included), by execution mode.")
	metQuerySeconds = execHistograms("ccsp_engine_query_seconds",
		"Wall-clock duration of Engine.Query calls, by execution mode.")
	metRebuilds = telemetry.Default.Counter("ccsp_engine_rebuilds_total",
		"DynamicEngine background rebuilds that published a new epoch.",
		telemetry.L("result", "ok"))
	metRebuildErrors = telemetry.Default.Counter("ccsp_engine_rebuilds_total",
		"DynamicEngine background rebuilds that failed (generation dropped).",
		telemetry.L("result", "error"))
	metRebuildSeconds = telemetry.Default.Histogram("ccsp_engine_rebuild_seconds",
		"Wall-clock duration of successful DynamicEngine rebuilds.", nil)
)

// execCounters pre-creates one counter child per execution mode,
// indexable by the Execution constant itself.
func execCounters(name, help string) [2]*telemetry.Counter {
	var out [2]*telemetry.Counter
	for _, x := range []Execution{ExecSimulated, ExecDirect} {
		out[x] = telemetry.Default.Counter(name, help, telemetry.L("exec", x.String()))
	}
	return out
}

// execHistograms is execCounters for latency histograms.
func execHistograms(name, help string) [2]*telemetry.Histogram {
	var out [2]*telemetry.Histogram
	for _, x := range []Execution{ExecSimulated, ExecDirect} {
		out[x] = telemetry.Default.Histogram(name, help, nil, telemetry.L("exec", x.String()))
	}
	return out
}

// observeQuery records one Engine.Query call (errors included: a failed
// query burned its wall-clock too).
func (e *Engine) observeQuery(start time.Time) {
	x := e.opts.Execution
	metQueries[x].Inc()
	metQuerySeconds[x].ObserveDuration(time.Since(start))
}

// observeBuild records one completed (successful) artifact build.
func (e *Engine) observeBuild(start time.Time) {
	x := e.opts.Execution
	metArtifactBuilds[x].Inc()
	metPreprocessSeconds[x].ObserveDuration(time.Since(start))
}
