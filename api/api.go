// Package api defines the versioned wire schema of the ccsp query plane:
// the typed request/response model shared by the library (Engine.Query,
// Engine.Batch), the serving daemon (POST /v1/query, /v1/batch) and the
// HTTP client package. The paper's amortization story - one hopset
// preprocess serves many queries (Theorems 3, 28, 31) - needs a surface
// that can express "many queries" as a unit; this package is that
// surface's vocabulary.
//
// A Request is a tagged union: Kind names the algorithm and exactly the
// matching parameter struct is set (Diameter takes none). A Response
// carries the matching typed result, the run's deterministic cost Stats,
// a Cached flag (set by serving layers), and - in batch position - a
// typed Error instead of a result. Distances on the wire use -1 for
// unreachable pairs (the in-process ccsp package uses ccsp.Unreachable).
//
// The package deliberately has no dependency on the ccsp root package:
// it is pure schema - types, structural validation, JSON decoding, and
// the canonical cache-key encoding - so clients that only speak the wire
// protocol can import it without pulling in the simulator.
//
// Versioning: Version is the wire major version, and the canonical
// cache-key encoding is prefixed with it. Unknown JSON fields are
// ignored (additions are backwards compatible); a union whose payload
// does not match its kind is rejected with ErrMalformed. Breaking
// changes bump Version and mount new /v{N}/ endpoints.
package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Version is the wire schema major version, reflected in the /v1/ HTTP
// endpoints and the cache-key prefix.
const Version = 1

// Unreachable is the wire encoding of an unreachable distance.
const Unreachable = -1

// ErrMalformed marks a request that is structurally invalid - unparseable
// JSON, an unknown kind, or a union payload that does not match its kind.
// Serving layers map it to 400; semantic errors (out-of-range nodes, bad
// option values) are typed by the engine instead and map to 422.
var ErrMalformed = errors.New("api: malformed request")

// Kind names one of the query algorithms.
type Kind string

const (
	// KindSSSP is exact single-source shortest paths (Theorem 33).
	KindSSSP Kind = "sssp"
	// KindMSSP is (1+ε)-approximate multi-source distances (Theorem 3).
	KindMSSP Kind = "mssp"
	// KindAPSP is approximate all-pairs distances (Theorems 28/31, §6.1).
	KindAPSP Kind = "apsp"
	// KindDistance is a single (1+ε)-approximate pair, answered via MSSP.
	KindDistance Kind = "distance"
	// KindDiameter is the near-3/2 diameter approximation (§7.2).
	KindDiameter Kind = "diameter"
	// KindKNearest is exact k-nearest neighbors with routing witnesses
	// (Theorem 18).
	KindKNearest Kind = "knearest"
	// KindSourceDetection is (S, d, k)-source detection (Theorem 19).
	KindSourceDetection Kind = "source_detection"
)

// Kinds lists every request kind, in a fixed order.
func Kinds() []Kind {
	return []Kind{KindSSSP, KindMSSP, KindAPSP, KindDistance, KindDiameter, KindKNearest, KindSourceDetection}
}

// APSPVariant selects which all-pairs algorithm serves a KindAPSP request.
type APSPVariant string

const (
	// APSPAuto (the default) picks APSPUnweighted on unit-weight graphs
	// and APSPWeighted otherwise - the strongest guarantee for the input.
	APSPAuto APSPVariant = "auto"
	// APSPWeighted is the (2+ε, (1+ε)W) weighted algorithm (Theorem 28).
	APSPWeighted APSPVariant = "weighted"
	// APSPWeighted3 is the simpler (3+ε) weighted algorithm (§6.1).
	APSPWeighted3 APSPVariant = "weighted3"
	// APSPUnweighted is the (2+ε) unweighted algorithm (Theorem 31).
	APSPUnweighted APSPVariant = "unweighted"
)

// SSSPParams parameterizes a KindSSSP request.
type SSSPParams struct {
	// Source is the source node ID.
	Source int `json:"source"`
}

// MSSPParams parameterizes a KindMSSP request.
type MSSPParams struct {
	// Sources is the source set; order and duplicates are irrelevant (the
	// engine and the cache key both normalize to the ascending dedup).
	Sources []int `json:"sources"`
}

// APSPParams parameterizes a KindAPSP request.
type APSPParams struct {
	// Variant selects the algorithm; empty means APSPAuto.
	Variant APSPVariant `json:"variant,omitempty"`
}

// DistanceParams parameterizes a KindDistance request.
type DistanceParams struct {
	From int `json:"from"`
	To   int `json:"to"`
}

// KNearestParams parameterizes a KindKNearest request.
type KNearestParams struct {
	// K is the number of nearest nodes each node learns (clamped to n).
	K int `json:"k"`
}

// SourceDetectionParams parameterizes a KindSourceDetection request.
type SourceDetectionParams struct {
	// Sources is the source set S.
	Sources []int `json:"sources"`
	// D is the hop bound d (clamped to n by the engine: paths never need
	// more than n-1 hops).
	D int `json:"d"`
	// K is the number of nearest sources each node learns.
	K int `json:"k"`
}

// Request is the tagged union of all query kinds: Kind names the
// algorithm and exactly the matching parameter field is non-nil
// (KindDiameter carries no parameters). The zero Request is invalid.
//
// Graph optionally names which of a daemon's graphs the query targets.
// Empty means the default (single-graph daemons serve exactly one
// engine under the empty ID, so pre-graph-field requests keep their
// meaning and their wire bytes). The cluster tier routes by this field.
type Request struct {
	Kind Kind `json:"kind"`

	// Graph is the target graph ID; empty selects the daemon's default
	// graph. IDs are limited to [A-Za-z0-9._-] (at most MaxGraphIDLen
	// bytes) so they embed safely in cache keys, file names and URLs.
	Graph string `json:"graph,omitempty"`

	SSSP            *SSSPParams            `json:"sssp,omitempty"`
	MSSP            *MSSPParams            `json:"mssp,omitempty"`
	APSP            *APSPParams            `json:"apsp,omitempty"`
	Distance        *DistanceParams        `json:"distance,omitempty"`
	KNearest        *KNearestParams        `json:"knearest,omitempty"`
	SourceDetection *SourceDetectionParams `json:"source_detection,omitempty"`
}

// payloads returns the union's payload presence by kind; nil marks kinds
// that carry no payload.
func (r Request) payloads() map[Kind]bool {
	return map[Kind]bool{
		KindSSSP:            r.SSSP != nil,
		KindMSSP:            r.MSSP != nil,
		KindAPSP:            r.APSP != nil,
		KindDistance:        r.Distance != nil,
		KindKNearest:        r.KNearest != nil,
		KindSourceDetection: r.SourceDetection != nil,
	}
}

// Validate checks the structural invariants of the union: the kind is
// known, the matching payload is present (except KindDiameter and
// KindAPSP, whose payloads are optional), and no foreign payload is set.
// Semantic validity (node ranges, positive k) is the engine's job - it
// owns the graph - and surfaces as ccsp.ErrInvalidSource /
// ccsp.ErrInvalidOption. Every violation here wraps ErrMalformed.
func (r Request) Validate() error {
	present := r.payloads()
	known := false
	for _, k := range Kinds() {
		if k == r.Kind {
			known = true
		}
	}
	if !known {
		return fmt.Errorf("%w: unknown kind %q", ErrMalformed, r.Kind)
	}
	if err := ValidateGraphID(r.Graph); err != nil {
		return err
	}
	for kind, set := range present {
		if set && kind != r.Kind {
			return fmt.Errorf("%w: kind %q with foreign %q parameters", ErrMalformed, r.Kind, kind)
		}
	}
	switch r.Kind {
	case KindDiameter:
		// No payload.
	case KindAPSP:
		if r.APSP != nil {
			switch r.APSP.Variant {
			case "", APSPAuto, APSPWeighted, APSPWeighted3, APSPUnweighted:
			default:
				return fmt.Errorf("%w: unknown apsp variant %q", ErrMalformed, r.APSP.Variant)
			}
		}
	default:
		if !present[r.Kind] {
			return fmt.Errorf("%w: kind %q without %q parameters", ErrMalformed, r.Kind, r.Kind)
		}
	}
	return nil
}

// Variant returns the request's APSP variant with the empty default
// resolved to APSPAuto. Only meaningful for KindAPSP.
func (r Request) Variant() APSPVariant {
	if r.APSP == nil || r.APSP.Variant == "" {
		return APSPAuto
	}
	return r.APSP.Variant
}

// MaxGraphIDLen bounds the byte length of a graph ID.
const MaxGraphIDLen = 128

// ValidateGraphID checks that id is a legal graph ID: empty (the
// default graph) or 1..MaxGraphIDLen bytes of [A-Za-z0-9._-]. The
// charset deliberately excludes ':' (the cache-key separator), '/' and
// whitespace, so IDs embed verbatim in cache keys, snapshot file names
// and URLs without escaping. Violations wrap ErrMalformed.
func ValidateGraphID(id string) error {
	if len(id) > MaxGraphIDLen {
		return fmt.Errorf("%w: graph ID longer than %d bytes", ErrMalformed, MaxGraphIDLen)
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("%w: graph ID %q contains %q (allowed: [A-Za-z0-9._-])", ErrMalformed, id, c)
		}
	}
	return nil
}

// CacheKey returns the canonical encoding of the request, the string
// serving layers key response caches by. Two requests with the same
// semantics encode identically: MSSP and source-detection source sets
// are sorted and deduplicated, the default APSP variant encodes as
// "auto". The encoding is versioned ("v1:...") so a schema bump never
// aliases old cache entries.
//
// A non-empty Graph inserts a "g=<id>:" segment right after the version
// prefix; requests without a graph ID keep the exact pre-graph-field
// encoding, so existing cache entries (and the golden responses pinned
// on them) survive the schema addition. The graph charset excludes ':',
// so a graph-scoped key can never alias a different graph's key or a
// default-graph key.
//
// Note that APSPAuto encodes as "auto": it resolves against a concrete
// graph, so serving layers that want auto and explicit requests to share
// cache entries resolve the variant before keying.
//
// CacheKey is CacheKeyAt(0): correct only for graphs that never mutate.
// Serving layers that accept updates key by CacheKeyAt(eng.Epoch()).
func (r Request) CacheKey() string { return r.CacheKeyAt(0) }

// CacheKeyAt is CacheKey scoped to a graph epoch: the serving layer
// passes the epoch of the engine that will answer (ccsp.Engine.Epoch),
// so a cached answer can never outlive the graph version it was
// computed on - bumping the epoch changes every key, orphaning (rather
// than aliasing) stale entries. Epoch 0 - a never-mutated graph -
// encodes no segment at all, keeping the historical key bytes; a
// positive epoch inserts "e=<epoch>:" after the version and graph
// prefix.
func (r Request) CacheKeyAt(epoch uint64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "v%d:", Version)
	if r.Graph != "" {
		fmt.Fprintf(&b, "g=%s:", r.Graph)
	}
	if epoch != 0 {
		fmt.Fprintf(&b, "e=%d:", epoch)
	}
	b.WriteString(string(r.Kind))
	switch r.Kind {
	case KindSSSP:
		if r.SSSP != nil {
			fmt.Fprintf(&b, ":src=%d", r.SSSP.Source)
		}
	case KindMSSP:
		if r.MSSP != nil {
			b.WriteString(":sources=")
			b.WriteString(canonicalInts(r.MSSP.Sources))
		}
	case KindAPSP:
		fmt.Fprintf(&b, ":variant=%s", r.Variant())
	case KindDistance:
		if r.Distance != nil {
			fmt.Fprintf(&b, ":from=%d:to=%d", r.Distance.From, r.Distance.To)
		}
	case KindKNearest:
		if r.KNearest != nil {
			fmt.Fprintf(&b, ":k=%d", r.KNearest.K)
		}
	case KindSourceDetection:
		if r.SourceDetection != nil {
			fmt.Fprintf(&b, ":sources=%s:d=%d:k=%d",
				canonicalInts(r.SourceDetection.Sources), r.SourceDetection.D, r.SourceDetection.K)
		}
	}
	return b.String()
}

// canonicalInts renders a sorted, deduplicated, comma-separated list.
func canonicalInts(vals []int) string {
	uniq := append([]int(nil), vals...)
	sort.Ints(uniq)
	parts := make([]string, 0, len(uniq))
	for i, v := range uniq {
		if i > 0 && v == uniq[i-1] {
			continue
		}
		parts = append(parts, strconv.Itoa(v))
	}
	return strings.Join(parts, ",")
}

// DecodeRequest reads one JSON-encoded Request from r and validates it.
// Callers cap the reader (http.MaxBytesReader or io.LimitReader) before
// handing it over; syntax and validation failures both wrap ErrMalformed.
func DecodeRequest(r io.Reader) (Request, error) {
	var req Request
	if err := decodeStrict(r, &req); err != nil {
		return Request{}, err
	}
	if err := req.Validate(); err != nil {
		return Request{}, err
	}
	return req, nil
}

// BatchRequest is the body of POST /v1/batch.
type BatchRequest struct {
	Requests []Request `json:"requests"`
}

// DecodeBatchRequest reads a JSON-encoded BatchRequest from r. Per-request
// validation is left to the executor, which reports it per position so one
// malformed request does not reject its whole batch.
func DecodeBatchRequest(r io.Reader) (BatchRequest, error) {
	var br BatchRequest
	if err := decodeStrict(r, &br); err != nil {
		return BatchRequest{}, err
	}
	return br, nil
}

// KindUpdate names the mutation operation of the update plane
// (POST /v1/update). It is deliberately not a query kind - Kinds()
// excludes it and it never appears inside a Request - but workload
// mixes (loadgen, ccload) use it to name write traffic next to the
// query kinds.
const KindUpdate Kind = "update"

// EdgeUpdate is one edge mutation. W >= 0 sets the weight of the
// undirected edge {U, V} (inserting it if absent, collapsing parallel
// edges); W < 0 deletes the edge (a no-op if absent).
type EdgeUpdate struct {
	U int   `json:"u"`
	V int   `json:"v"`
	W int64 `json:"w"`
}

// UpdateRequest is the body of POST /v1/update: a batch of edge
// mutations applied atomically as one generation - queries observe
// either none or all of them, at the epoch the response reports.
type UpdateRequest struct {
	// Graph targets one of the daemon's graphs; empty is the default.
	Graph string `json:"graph,omitempty"`
	// Updates is applied in order within the batch.
	Updates []EdgeUpdate `json:"updates"`
	// Async makes the daemon answer as soon as the updates are staged,
	// with the epoch they will become visible at, instead of blocking
	// until the background rebuild publishes it.
	Async bool `json:"async,omitempty"`
}

// Validate checks the structural invariants of an UpdateRequest.
// Per-update semantics (node ranges, self-loops) are the engine's job
// and surface as typed 422s.
func (r UpdateRequest) Validate() error {
	if err := ValidateGraphID(r.Graph); err != nil {
		return err
	}
	if len(r.Updates) == 0 {
		return fmt.Errorf("%w: update request with no updates", ErrMalformed)
	}
	return nil
}

// DecodeUpdateRequest reads one JSON-encoded UpdateRequest from r and
// validates it. Callers cap the reader first.
func DecodeUpdateRequest(r io.Reader) (UpdateRequest, error) {
	var ur UpdateRequest
	if err := decodeStrict(r, &ur); err != nil {
		return UpdateRequest{}, err
	}
	if err := ur.Validate(); err != nil {
		return UpdateRequest{}, err
	}
	return ur, nil
}

// UpdateResponse is the body of a successful /v1/update answer.
type UpdateResponse struct {
	// Graph echoes the request's graph ID.
	Graph string `json:"graph,omitempty"`
	// Epoch is the graph version carrying the batch: already serving
	// unless Pending.
	Epoch uint64 `json:"epoch"`
	// Applied is the number of updates in the batch.
	Applied int `json:"applied"`
	// Pending marks an Async answer: the rebuild was still in flight
	// when the response was written, and queries reflect the batch only
	// once GET /v1/epoch reaches Epoch.
	Pending bool `json:"pending,omitempty"`
}

// EpochResponse is the body of GET /v1/epoch: the serving epoch of one
// graph, for polling async updates and for asserting freshness.
type EpochResponse struct {
	// Graph echoes the ?graph= parameter.
	Graph string `json:"graph,omitempty"`
	// Epoch is the graph version queries are answered at right now.
	Epoch uint64 `json:"epoch"`
	// Pending counts staged updates not yet visible at Epoch.
	Pending int `json:"pending,omitempty"`
}

// decodeStrict decodes exactly one JSON value (trailing garbage is an
// error), mapping every failure to ErrMalformed.
func decodeStrict(r io.Reader, v interface{}) error {
	dec := json.NewDecoder(r)
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	if dec.More() {
		return fmt.Errorf("%w: trailing data after the JSON body", ErrMalformed)
	}
	return nil
}

// ErrorCode is the machine-readable classification of a failed request,
// the wire form of the ccsp typed-error taxonomy.
type ErrorCode string

const (
	// CodeCanceled: the caller's context was canceled mid-query.
	CodeCanceled ErrorCode = "canceled"
	// CodeDeadline: a deadline (the server's per-request timeout, or the
	// caller's own) expired mid-query.
	CodeDeadline ErrorCode = "deadline_exceeded"
	// CodeRoundLimit: the run exceeded Options.MaxRounds.
	CodeRoundLimit ErrorCode = "round_limit"
	// CodeInvalidSource: a node ID is out of range or a source set is empty.
	CodeInvalidSource ErrorCode = "invalid_source"
	// CodeInvalidOption: an option or query parameter is out of its domain.
	CodeInvalidOption ErrorCode = "invalid_option"
	// CodeMalformed: the request is structurally invalid (ErrMalformed).
	CodeMalformed ErrorCode = "malformed"
	// CodeUnknownGraph: the request named a graph this daemon does not
	// serve (HTTP 404).
	CodeUnknownGraph ErrorCode = "unknown_graph"
	// CodeUnavailable: the daemon (or, in a cluster, every replica that
	// could own the graph) cannot serve the request right now - snapshots
	// still loading, or the owning replica is down (HTTP 503). Transient:
	// retrying later, or against another replica, may succeed.
	CodeUnavailable ErrorCode = "unavailable"
	// CodeOverloaded: the daemon shed this request under admission
	// control - its bounded in-flight limit and wait queue were full
	// (HTTP 503 with a Retry-After hint). Transient: back off and retry.
	CodeOverloaded ErrorCode = "overloaded"
	// CodeInternal: anything the taxonomy does not classify.
	CodeInternal ErrorCode = "internal"
)

// Error is a failed request's typed outcome.
type Error struct {
	Code    ErrorCode `json:"code"`
	Message string    `json:"message"`
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

// Stats is the deterministic core of a run's communication cost: total
// rounds (simulated + charged primitives), messages and machine words.
// The word count is the currency the paper's bounds are stated in.
type Stats struct {
	TotalRounds int   `json:"total_rounds"`
	SimRounds   int   `json:"sim_rounds"`
	Messages    int64 `json:"messages"`
	Words       int64 `json:"words"`
}

// SSSPResult is the wire form of an exact single-source answer.
type SSSPResult struct {
	Source     int     `json:"source"`
	Dist       []int64 `json:"dist"`
	Iterations int     `json:"iterations"`
}

// MSSPResult is the wire form of a multi-source answer. Sources is the
// normalized (ascending, deduplicated) source list; Dist[v][i] is the
// distance from node v to Sources[i].
type MSSPResult struct {
	Sources []int     `json:"sources"`
	Dist    [][]int64 `json:"dist"`
}

// APSPResult is the wire form of an all-pairs answer. Variant is the
// concrete algorithm that ran (never "auto").
type APSPResult struct {
	Variant APSPVariant `json:"variant"`
	Dist    [][]int64   `json:"dist"`
}

// DistanceResult is the wire form of a single-pair answer.
type DistanceResult struct {
	From      int   `json:"from"`
	To        int   `json:"to"`
	Distance  int64 `json:"distance"`
	Reachable bool  `json:"reachable"`
}

// DiameterResult is the wire form of a diameter answer.
type DiameterResult struct {
	Estimate int64 `json:"estimate"`
}

// Neighbor is one entry of a k-nearest or source-detection list.
type Neighbor struct {
	Node     int   `json:"node"`
	Dist     int64 `json:"dist"`
	Hops     int   `json:"hops"`
	FirstHop int   `json:"first_hop"`
}

// KNearestResult is the wire form of a k-nearest answer.
type KNearestResult struct {
	K         int          `json:"k"`
	Neighbors [][]Neighbor `json:"neighbors"`
}

// SourceDetectionResult is the wire form of an (S, d, k)-source-detection
// answer. Detected[v] lists node v's up-to-k nearest sources within d
// hops (FirstHop is -1: this query tracks no routing witnesses).
type SourceDetectionResult struct {
	D        int          `json:"d"`
	K        int          `json:"k"`
	Detected [][]Neighbor `json:"detected"`
}

// Response is the typed outcome of one Request: Kind echoes the request,
// exactly one result field is set on success (matching Kind), Error is
// set instead on failure. Stats is the deterministic cost of the run
// that produced the result (cached responses repeat the original run's
// stats); Cached marks responses served from a cache.
type Response struct {
	Kind Kind `json:"kind"`

	// Graph echoes the request's graph ID (empty for the default graph,
	// which also keeps pre-graph-field response bytes identical).
	Graph string `json:"graph,omitempty"`

	SSSP            *SSSPResult            `json:"sssp,omitempty"`
	MSSP            *MSSPResult            `json:"mssp,omitempty"`
	APSP            *APSPResult            `json:"apsp,omitempty"`
	Distance        *DistanceResult        `json:"distance,omitempty"`
	Diameter        *DiameterResult        `json:"diameter,omitempty"`
	KNearest        *KNearestResult        `json:"knearest,omitempty"`
	SourceDetection *SourceDetectionResult `json:"source_detection,omitempty"`

	Stats  *Stats `json:"stats,omitempty"`
	Cached bool   `json:"cached"`
	Error  *Error `json:"error,omitempty"`
}

// Err returns the response's error as a Go error (nil on success).
func (r *Response) Err() error {
	if r.Error == nil {
		return nil
	}
	return r.Error
}

// BatchResponse is the body of a /v1/batch answer: Responses[i] answers
// Requests[i], with per-request errors in place (a failed or canceled
// request never fails the batch).
type BatchResponse struct {
	Responses []Response `json:"responses"`
}

// Health is the body of /healthz: process liveness plus the default
// graph's shape. Graphs lists the named graphs a multi-graph daemon
// serves (omitted entirely in single-graph mode, keeping the historical
// body byte-identical).
type Health struct {
	Status string   `json:"status"`
	Nodes  int      `json:"nodes"`
	Edges  int      `json:"edges"`
	Graphs []string `json:"graphs,omitempty"`
}

// Ready is the body of /readyz, the readiness (as opposed to liveness)
// probe: a daemon is ready only once every snapshot is loaded or
// preprocessed. Graphs advertises the graph IDs this replica serves -
// including "" when a default engine exists - which is what the cluster
// prober uses to route queries only to replicas that actually hold the
// target graph.
type Ready struct {
	Ready  bool     `json:"ready"`
	Graphs []string `json:"graphs"`
}
