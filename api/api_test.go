package api

import (
	"errors"
	"strings"
	"testing"
)

func valid() map[Kind]Request {
	return map[Kind]Request{
		KindSSSP:            {Kind: KindSSSP, SSSP: &SSSPParams{Source: 3}},
		KindMSSP:            {Kind: KindMSSP, MSSP: &MSSPParams{Sources: []int{5, 2, 5}}},
		KindAPSP:            {Kind: KindAPSP},
		KindDistance:        {Kind: KindDistance, Distance: &DistanceParams{From: 1, To: 7}},
		KindDiameter:        {Kind: KindDiameter},
		KindKNearest:        {Kind: KindKNearest, KNearest: &KNearestParams{K: 4}},
		KindSourceDetection: {Kind: KindSourceDetection, SourceDetection: &SourceDetectionParams{Sources: []int{0, 2}, D: 3, K: 2}},
	}
}

func TestValidateAcceptsEveryKind(t *testing.T) {
	reqs := valid()
	if len(reqs) != len(Kinds()) {
		t.Fatalf("test covers %d kinds, schema has %d", len(reqs), len(Kinds()))
	}
	for kind, req := range reqs {
		if err := req.Validate(); err != nil {
			t.Errorf("%s: Validate() = %v, want nil", kind, err)
		}
	}
}

func TestValidateRejectsMalformedUnions(t *testing.T) {
	for name, req := range map[Kind]Request{
		"unknown-kind":    {Kind: "shortest"},
		"empty-kind":      {},
		"missing-payload": {Kind: KindSSSP},
		"foreign-payload": {Kind: KindDiameter, SSSP: &SSSPParams{Source: 1}},
		"two-payloads":    {Kind: KindMSSP, MSSP: &MSSPParams{Sources: []int{1}}, SSSP: &SSSPParams{}},
		"bad-variant":     {Kind: KindAPSP, APSP: &APSPParams{Variant: "fastest"}},
	} {
		err := req.Validate()
		if err == nil {
			t.Errorf("%s: Validate() = nil, want error", name)
			continue
		}
		if !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: error %v does not wrap ErrMalformed", name, err)
		}
	}
}

func TestCacheKeyCanonical(t *testing.T) {
	a := Request{Kind: KindMSSP, MSSP: &MSSPParams{Sources: []int{9, 2, 9, 4}}}
	b := Request{Kind: KindMSSP, MSSP: &MSSPParams{Sources: []int{4, 2, 9}}}
	if a.CacheKey() != b.CacheKey() {
		t.Errorf("equivalent MSSP requests key differently: %q vs %q", a.CacheKey(), b.CacheKey())
	}
	if want := "v1:mssp:sources=2,4,9"; a.CacheKey() != want {
		t.Errorf("CacheKey = %q, want %q", a.CacheKey(), want)
	}

	// The APSP default variant encodes as auto, explicit variants as
	// themselves - and the two never alias.
	auto := Request{Kind: KindAPSP}
	if want := "v1:apsp:variant=auto"; auto.CacheKey() != want {
		t.Errorf("auto APSP key = %q, want %q", auto.CacheKey(), want)
	}
	w3 := Request{Kind: KindAPSP, APSP: &APSPParams{Variant: APSPWeighted3}}
	if auto.CacheKey() == w3.CacheKey() {
		t.Error("auto and weighted3 APSP requests share a cache key")
	}

	// Every kind keys distinctly, and keys carry the version prefix.
	seen := map[string]Kind{}
	for kind, req := range valid() {
		key := req.CacheKey()
		if !strings.HasPrefix(key, "v1:") {
			t.Errorf("%s: key %q lacks the version prefix", kind, key)
		}
		if prev, dup := seen[key]; dup {
			t.Errorf("kinds %s and %s share key %q", prev, kind, key)
		}
		seen[key] = kind
	}

	sd1 := Request{Kind: KindSourceDetection, SourceDetection: &SourceDetectionParams{Sources: []int{7, 1, 7}, D: 2, K: 3}}
	sd2 := Request{Kind: KindSourceDetection, SourceDetection: &SourceDetectionParams{Sources: []int{1, 7}, D: 2, K: 3}}
	if sd1.CacheKey() != sd2.CacheKey() {
		t.Error("equivalent source-detection requests key differently")
	}
}

func TestGraphIDValidation(t *testing.T) {
	for _, ok := range []string{"", "roads", "Berlin_2024.v2", "a-b.c_d", strings.Repeat("x", MaxGraphIDLen)} {
		if err := ValidateGraphID(ok); err != nil {
			t.Errorf("ValidateGraphID(%q) = %v, want nil", ok, err)
		}
	}
	for _, bad := range []string{"a:b", "a/b", "a b", "päris", strings.Repeat("x", MaxGraphIDLen+1)} {
		if err := ValidateGraphID(bad); !errors.Is(err, ErrMalformed) {
			t.Errorf("ValidateGraphID(%q) = %v, want ErrMalformed", bad, err)
		}
	}
	// Validate threads the graph check through the union.
	req := Request{Kind: KindDiameter, Graph: "no:colons"}
	if err := req.Validate(); !errors.Is(err, ErrMalformed) {
		t.Errorf("Validate with bad graph = %v, want ErrMalformed", err)
	}
	req.Graph = "roads"
	if err := req.Validate(); err != nil {
		t.Errorf("Validate with good graph = %v, want nil", err)
	}
}

func TestCacheKeyGraphScoped(t *testing.T) {
	// The pre-graph-field encoding is preserved verbatim...
	bare := Request{Kind: KindMSSP, MSSP: &MSSPParams{Sources: []int{2, 4}}}
	if want := "v1:mssp:sources=2,4"; bare.CacheKey() != want {
		t.Errorf("default-graph key = %q, want %q", bare.CacheKey(), want)
	}
	// ...and a graph ID inserts one segment after the version prefix.
	scoped := bare
	scoped.Graph = "roads"
	if want := "v1:g=roads:mssp:sources=2,4"; scoped.CacheKey() != want {
		t.Errorf("graph-scoped key = %q, want %q", scoped.CacheKey(), want)
	}
	other := bare
	other.Graph = "rails"
	keys := map[string]bool{bare.CacheKey(): true, scoped.CacheKey(): true, other.CacheKey(): true}
	if len(keys) != 3 {
		t.Errorf("same request on three graphs must key three ways, got %v", keys)
	}
}

func TestDecodeRequest(t *testing.T) {
	req, err := DecodeRequest(strings.NewReader(`{"kind":"mssp","mssp":{"sources":[3,1]}}`))
	if err != nil {
		t.Fatal(err)
	}
	if req.Kind != KindMSSP || len(req.MSSP.Sources) != 2 {
		t.Errorf("decoded %+v", req)
	}

	// Unknown fields are ignored (forward compatibility)...
	if _, err := DecodeRequest(strings.NewReader(`{"kind":"diameter","hint":"fast"}`)); err != nil {
		t.Errorf("unknown field rejected: %v", err)
	}

	// ...but malformed bodies are typed ErrMalformed.
	for name, body := range map[string]string{
		"syntax":        `{"kind":`,
		"wrong-type":    `{"kind":"sssp","sssp":{"source":"zero"}}`,
		"trailing":      `{"kind":"diameter"}{"kind":"diameter"}`,
		"union-mix":     `{"kind":"sssp","mssp":{"sources":[1]}}`,
		"unknown-kind":  `{"kind":"bfs"}`,
		"empty-payload": `{"kind":"knearest"}`,
	} {
		if _, err := DecodeRequest(strings.NewReader(body)); !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: err = %v, want ErrMalformed", name, err)
		}
	}
}

func TestResponseErr(t *testing.T) {
	ok := Response{Kind: KindDiameter, Diameter: &DiameterResult{Estimate: 4}}
	if ok.Err() != nil {
		t.Errorf("success response Err() = %v", ok.Err())
	}
	bad := Response{Kind: KindSSSP, Error: &Error{Code: CodeInvalidSource, Message: "source 99 out of range"}}
	if err := bad.Err(); err == nil || !strings.Contains(err.Error(), "invalid_source") {
		t.Errorf("error response Err() = %v", err)
	}
}
