module github.com/congestedclique/ccsp

go 1.22
