package ccsp

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"github.com/congestedclique/ccsp/internal/graphgen"
)

// Benchmarks for the direct query path (DESIGN.md §13). Engines are
// preprocessed once per size and shared across benchmark runs, so the
// measured loop is the warm per-query cost: cached G ∪ H, the
// source-restricted detection panel, and the specialized WH kernel.

var benchEngines sync.Map // n -> *Engine (ExecDirect, eps 0.5)

// benchEngine returns a preprocessed direct-mode engine over the E17/E18
// graph family at size n, built once per process.
func benchEngine(b *testing.B, n int) *Engine {
	b.Helper()
	if e, ok := benchEngines.Load(n); ok {
		return e.(*Engine)
	}
	g := graphgen.Connected(n, 3*n, graphgen.Weights{Max: 10}, int64(n)+17)
	gr := NewGraph(n)
	for v := 0; v < g.N; v++ {
		for _, ed := range g.Adj[v] {
			if int(ed.To) > v {
				if err := gr.AddEdge(v, int(ed.To), ed.W); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	eng, err := NewEngine(context.Background(), gr, Options{Epsilon: 0.5, Execution: ExecDirect})
	if err != nil {
		b.Fatal(err)
	}
	benchEngines.Store(n, eng)
	return eng
}

// BenchmarkDirectQuery measures warm MSSP latency at q sources per query
// (the E18 workload; run with -benchmem for allocs/op).
func BenchmarkDirectQuery(b *testing.B) {
	for _, n := range []int{256, 1024} {
		for _, q := range []int{1, 8} {
			b.Run(fmt.Sprintf("n=%d/q=%d", n, q), func(b *testing.B) {
				eng := benchEngine(b, n)
				sources := make([]int, 0, q)
				for i := 0; i < q; i++ {
					sources = append(sources, (i*n/q+1)%n)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := eng.MSSP(context.Background(), sources); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkDirectKNearest is the knearestDirect regression benchmark:
// the routed weight matrix must be built once per engine, not per query,
// so allocs/op must stay flat in the matrix size.
func BenchmarkDirectKNearest(b *testing.B) {
	for _, n := range []int{256, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			eng := benchEngine(b, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.KNearest(context.Background(), 4); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
